//! The keyed state backend.
//!
//! State is partitioned into key-groups; each key-group is further split
//! into `fanout` sub-groups to support Meces' hierarchical state
//! organization (fanout 1 for everyone else). State values are *real*
//! (counts/sums/window panes) so that output equivalence can be verified,
//! while `nominal_bytes` carries the migration-cost model so that totals can
//! match the paper's 0.5–30 GB without materializing gigabytes.

use std::collections::HashMap;

use crate::ids::{sub_group_of, Key, KeyGroup};
use crate::window::PaneSet;

/// A single key's state.
#[derive(Clone, Debug, PartialEq)]
pub enum StateValue {
    /// Running count.
    Count(u64),
    /// Running count + sum.
    Sum { count: u64, sum: i64 },
    /// Sliding-window panes.
    Panes(PaneSet),
    /// Two lists (e.g. persons/auctions sides of a windowed join).
    Lists(Vec<i64>, Vec<i64>),
}

impl StateValue {
    /// Running count, where meaningful (testing/verification helper).
    pub fn count(&self) -> u64 {
        match self {
            StateValue::Count(c) => *c,
            StateValue::Sum { count, .. } => *count,
            StateValue::Panes(p) => p.total_count(),
            StateValue::Lists(a, b) => (a.len() + b.len()) as u64,
        }
    }
}

/// State of one sub-group (the migration atom under hierarchical
/// organization; the whole key-group when `fanout == 1`).
#[derive(Clone, Debug, Default)]
pub struct SubState {
    /// Per-key values.
    pub entries: HashMap<Key, StateValue>,
    /// Modeled serialized size of this sub-group's state.
    pub nominal_bytes: u64,
}

/// A migratable unit of state extracted from a backend.
#[derive(Clone, Debug)]
pub struct StateUnit {
    /// Owning key-group.
    pub kg: KeyGroup,
    /// Sub-group index within the key-group.
    pub sub: u8,
    /// The state itself.
    pub state: SubState,
}

impl StateUnit {
    /// Serialized size used by the migration cost model.
    pub fn bytes(&self) -> u64 {
        self.state.nominal_bytes
    }
}

/// Per-instance keyed state store.
#[derive(Debug)]
pub struct StateBackend {
    max_key_groups: u16,
    fanout: u8,
    /// kg → sub → Some(state) if that sub-group is locally present.
    groups: HashMap<u16, Vec<Option<SubState>>>,
    /// kg → is the group active (DRRS: arrived-but-inactive until implicit
    /// alignment). Absent = active (the common, non-scaling case).
    inactive: HashMap<u16, bool>,
}

impl StateBackend {
    /// Create an empty backend.
    pub fn new(max_key_groups: u16, fanout: u8) -> Self {
        Self {
            max_key_groups,
            fanout: fanout.max(1),
            groups: HashMap::new(),
            inactive: HashMap::new(),
        }
    }

    /// Sub-group index of a key.
    #[inline]
    pub fn sub_of(&self, key: Key) -> u8 {
        sub_group_of(key, self.max_key_groups, self.fanout)
    }

    /// Is the sub-group holding `key` locally present?
    #[inline]
    pub fn holds(&self, kg: KeyGroup, sub: u8) -> bool {
        self.groups
            .get(&kg.0)
            .map(|v| v[sub as usize].is_some())
            .unwrap_or(false)
    }

    /// Are *all* sub-groups of `kg` locally present?
    pub fn holds_group(&self, kg: KeyGroup) -> bool {
        match self.groups.get(&kg.0) {
            Some(v) => v.iter().all(|s| s.is_some()),
            None => false,
        }
    }

    /// Mark a key-group inactive (arrived but awaiting alignment).
    pub fn set_inactive(&mut self, kg: KeyGroup, inactive: bool) {
        if inactive {
            self.inactive.insert(kg.0, true);
        } else {
            self.inactive.remove(&kg.0);
        }
    }

    /// Is the key-group active (present groups default to active)?
    pub fn is_active(&self, kg: KeyGroup) -> bool {
        !self.inactive.get(&kg.0).copied().unwrap_or(false)
    }

    /// Ensure a key-group exists locally with all sub-groups (used when an
    /// instance is the initial owner).
    pub fn ensure_group(&mut self, kg: KeyGroup) {
        let fanout = self.fanout as usize;
        self.groups
            .entry(kg.0)
            .or_insert_with(|| (0..fanout).map(|_| Some(SubState::default())).collect());
    }

    /// Access the value for `key`, creating it with `default` if absent.
    /// Panics if the sub-group is not locally present — admission control
    /// must have checked [`Self::holds`] first.
    pub fn entry_or(&mut self, kg: KeyGroup, key: Key, default: impl FnOnce() -> StateValue) -> &mut StateValue {
        let sub = self.sub_of(key) as usize;
        let g = self
            .groups
            .get_mut(&kg.0)
            .unwrap_or_else(|| panic!("state access to absent key-group {kg}"));
        let s = g[sub]
            .as_mut()
            .unwrap_or_else(|| panic!("state access to migrated-out sub-group {kg}/{sub}"));
        s.entries.entry(key).or_insert_with(default)
    }

    /// Add to a sub-group's modeled serialized size (operators call this as
    /// their state grows).
    pub fn add_bytes(&mut self, kg: KeyGroup, key: Key, bytes: i64) {
        let sub = self.sub_of(key) as usize;
        if let Some(g) = self.groups.get_mut(&kg.0) {
            if let Some(s) = g[sub].as_mut() {
                s.nominal_bytes = (s.nominal_bytes as i64 + bytes).max(0) as u64;
            }
        }
    }

    /// Extract (remove) one sub-group for migration.
    pub fn extract(&mut self, kg: KeyGroup, sub: u8) -> Option<StateUnit> {
        let g = self.groups.get_mut(&kg.0)?;
        let state = g[sub as usize].take()?;
        if g.iter().all(|s| s.is_none()) {
            self.groups.remove(&kg.0);
            self.inactive.remove(&kg.0);
        }
        Some(StateUnit { kg, sub, state })
    }

    /// Extract all sub-groups of a key-group (key-group-granular migration).
    pub fn extract_group(&mut self, kg: KeyGroup) -> Vec<StateUnit> {
        (0..self.fanout).filter_map(|s| self.extract(kg, s)).collect()
    }

    /// Install a migrated unit.
    pub fn install(&mut self, unit: StateUnit, active: bool) {
        let fanout = self.fanout as usize;
        let g = self
            .groups
            .entry(unit.kg.0)
            .or_insert_with(|| (0..fanout).map(|_| None).collect());
        debug_assert!(g[unit.sub as usize].is_none(), "double-install of {}/{}", unit.kg, unit.sub);
        g[unit.sub as usize] = Some(unit.state);
        self.set_inactive(unit.kg, !active);
    }

    /// Total modeled bytes held locally.
    pub fn total_bytes(&self) -> u64 {
        self.groups
            .values()
            .flat_map(|g| g.iter().flatten())
            .map(|s| s.nominal_bytes)
            .sum()
    }

    /// Total number of keys held locally.
    pub fn total_keys(&self) -> usize {
        self.groups
            .values()
            .flat_map(|g| g.iter().flatten())
            .map(|s| s.entries.len())
            .sum()
    }

    /// Bytes held for one key-group.
    pub fn group_bytes(&self, kg: KeyGroup) -> u64 {
        self.groups
            .get(&kg.0)
            .map(|g| g.iter().flatten().map(|s| s.nominal_bytes).sum())
            .unwrap_or(0)
    }

    /// Iterate over locally present key-groups.
    pub fn held_groups(&self) -> impl Iterator<Item = KeyGroup> + '_ {
        self.groups.keys().map(|&k| KeyGroup(k))
    }

    /// Fold all per-key values into `(key, count)` pairs — used by output
    /// equivalence tests.
    pub fn snapshot_counts(&self) -> HashMap<Key, u64> {
        let mut out = HashMap::new();
        for g in self.groups.values() {
            for s in g.iter().flatten() {
                for (&k, v) in &s.entries {
                    *out.entry(k).or_insert(0) += v.count();
                }
            }
        }
        out
    }

    /// Sub-group fanout.
    pub fn fanout(&self) -> u8 {
        self.fanout
    }

    /// Convenience for operators: adjust nominal bytes for the sub-group
    /// holding `key`, computing the key-group internally.
    pub fn add_bytes_for(&mut self, key: Key, bytes: i64) {
        let kg = crate::ids::key_group_of(key, self.max_key_groups);
        self.add_bytes(kg, key, bytes);
    }

    /// Visit every locally present `(key, value)` pair mutably (window
    /// firing). Iteration order is deterministic (sorted by key-group then
    /// key) so runs stay reproducible.
    pub fn for_each_entry_mut(&mut self, mut f: impl FnMut(Key, &mut StateValue)) {
        let mut kgs: Vec<u16> = self.groups.keys().copied().collect();
        kgs.sort_unstable();
        for kgi in kgs {
            let g = self.groups.get_mut(&kgi).expect("key listed");
            for s in g.iter_mut().flatten() {
                let mut keys: Vec<Key> = s.entries.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    let v = s.entries.get_mut(&k).expect("key listed");
                    f(k, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> StateBackend {
        let mut b = StateBackend::new(16, 1);
        b.ensure_group(KeyGroup(3));
        b
    }

    #[test]
    fn entry_updates_and_counts() {
        let mut b = backend();
        match b.entry_or(KeyGroup(3), 77, || StateValue::Count(0)) {
            StateValue::Count(c) => *c += 5,
            _ => unreachable!(),
        }
        assert_eq!(b.snapshot_counts()[&77], 5);
        assert_eq!(b.total_keys(), 1);
    }

    #[test]
    fn extract_install_round_trip() {
        let mut b = backend();
        *b.entry_or(KeyGroup(3), 1, || StateValue::Count(0)) = StateValue::Count(9);
        b.add_bytes(KeyGroup(3), 1, 1024);
        let units = b.extract_group(KeyGroup(3));
        assert_eq!(units.len(), 1);
        assert!(!b.holds_group(KeyGroup(3)));
        assert_eq!(b.total_bytes(), 0);

        let mut b2 = StateBackend::new(16, 1);
        for u in units {
            assert_eq!(u.bytes(), 1024);
            b2.install(u, true);
        }
        assert!(b2.holds_group(KeyGroup(3)));
        assert_eq!(b2.snapshot_counts()[&1], 9);
    }

    #[test]
    fn inactive_flag() {
        let mut b = backend();
        assert!(b.is_active(KeyGroup(3)));
        b.set_inactive(KeyGroup(3), true);
        assert!(!b.is_active(KeyGroup(3)));
        b.set_inactive(KeyGroup(3), false);
        assert!(b.is_active(KeyGroup(3)));
    }

    #[test]
    fn hierarchical_extract_is_partial() {
        let mut b = StateBackend::new(16, 4);
        b.ensure_group(KeyGroup(2));
        // Find keys for two different sub-groups of kg 2.
        let mut keys_by_sub: HashMap<u8, Key> = HashMap::new();
        for k in 0..100_000u64 {
            if crate::ids::key_group_of(k, 16) == KeyGroup(2) {
                keys_by_sub.entry(b.sub_of(k)).or_insert(k);
                if keys_by_sub.len() >= 2 {
                    break;
                }
            }
        }
        let subs: Vec<(u8, Key)> = keys_by_sub.into_iter().collect();
        assert!(subs.len() >= 2);
        for &(_, k) in &subs {
            *b.entry_or(KeyGroup(2), k, || StateValue::Count(0)) = StateValue::Count(1);
        }
        let (s0, k0) = subs[0];
        let unit = b.extract(KeyGroup(2), s0).expect("present");
        assert!(unit.state.entries.contains_key(&k0));
        assert!(!b.holds(KeyGroup(2), s0));
        assert!(!b.holds_group(KeyGroup(2)));
        // The other sub-group is still present.
        assert!(b.holds(KeyGroup(2), subs[1].0));
    }

    #[test]
    fn bytes_never_negative() {
        let mut b = backend();
        b.add_bytes(KeyGroup(3), 1, 100);
        b.add_bytes(KeyGroup(3), 1, -500);
        assert_eq!(b.total_bytes(), 0);
    }
}
