//! Sliding-window panes.
//!
//! Sliding windows are implemented with the standard pane decomposition: a
//! pane covers one slide interval; a window aggregates `size / slide`
//! consecutive panes. The paper's Q7 uses 10 s windows with 0.5 s slides
//! (20 panes), Q8 40 s with 5 s slides (8 panes).

use simcore::SimTime;

/// Aggregation applied inside a pane / across panes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agg {
    /// Maximum of values.
    Max,
    /// Sum of values.
    Sum,
    /// Count of records.
    Count,
}

/// One pane: partial aggregate of the records whose event time falls in
/// `[start, start + slide)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pane {
    /// Pane start (event time).
    pub start: SimTime,
    /// Partial aggregate value.
    pub agg: i64,
    /// Records folded in.
    pub count: u64,
}

/// The pane ring for one key.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PaneSet {
    panes: Vec<Pane>,
}

impl PaneSet {
    /// Fold a record into the pane owning `event_time`.
    pub fn add(&mut self, event_time: SimTime, value: i64, count: u64, slide: SimTime, agg: Agg) {
        let start = (event_time / slide) * slide;
        let pane = match self.panes.iter_mut().find(|p| p.start == start) {
            Some(p) => p,
            None => {
                self.panes.push(Pane {
                    start,
                    agg: initial(agg),
                    count: 0,
                });
                self.panes.sort_by_key(|p| p.start);
                self.panes
                    .iter_mut()
                    .find(|p| p.start == start)
                    .expect("just inserted")
            }
        };
        pane.agg = combine(agg, pane.agg, value, count);
        pane.count += count;
    }

    /// Aggregate the window ending at `window_end` (exclusive) of length
    /// `size`. Returns `None` if no pane overlaps.
    pub fn window_agg(&self, window_end: SimTime, size: SimTime, agg: Agg) -> Option<(i64, u64)> {
        let lo = window_end.saturating_sub(size);
        let mut acc: Option<i64> = None;
        let mut n = 0u64;
        for p in &self.panes {
            if p.start >= lo && p.start < window_end {
                acc = Some(match acc {
                    None => p.agg,
                    Some(a) => merge(agg, a, p.agg),
                });
                n += p.count;
            }
        }
        acc.map(|a| (a, n))
    }

    /// Drop panes entirely before `horizon` (no window can need them).
    /// Returns the number of records evicted (for state-size accounting).
    pub fn evict_before(&mut self, horizon: SimTime) -> u64 {
        let mut evicted = 0;
        self.panes.retain(|p| {
            if p.start < horizon {
                evicted += p.count;
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Records currently buffered across panes.
    pub fn total_count(&self) -> u64 {
        self.panes.iter().map(|p| p.count).sum()
    }

    /// Number of live panes.
    pub fn len(&self) -> usize {
        self.panes.len()
    }

    /// No live panes?
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty()
    }
}

fn initial(agg: Agg) -> i64 {
    match agg {
        Agg::Max => i64::MIN,
        Agg::Sum | Agg::Count => 0,
    }
}

fn combine(agg: Agg, acc: i64, value: i64, count: u64) -> i64 {
    match agg {
        Agg::Max => acc.max(value),
        Agg::Sum => acc + value * count as i64,
        Agg::Count => acc + count as i64,
    }
}

fn merge(agg: Agg, a: i64, b: i64) -> i64 {
    match agg {
        Agg::Max => a.max(b),
        Agg::Sum | Agg::Count => a + b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panes_partition_by_slide() {
        let mut p = PaneSet::default();
        p.add(0, 5, 1, 100, Agg::Max);
        p.add(50, 9, 1, 100, Agg::Max);
        p.add(100, 3, 1, 100, Agg::Max);
        assert_eq!(p.len(), 2);
        assert_eq!(p.window_agg(200, 200, Agg::Max), Some((9, 3)));
        assert_eq!(p.window_agg(200, 100, Agg::Max), Some((3, 1)));
    }

    #[test]
    fn sum_and_count_aggs() {
        let mut p = PaneSet::default();
        p.add(0, 2, 3, 10, Agg::Sum); // 3 records of value 2
        p.add(10, 4, 1, 10, Agg::Sum);
        assert_eq!(p.window_agg(20, 20, Agg::Sum), Some((10, 4)));

        let mut c = PaneSet::default();
        c.add(0, 0, 7, 10, Agg::Count);
        assert_eq!(c.window_agg(10, 10, Agg::Count), Some((7, 7)));
    }

    #[test]
    fn eviction_frees_old_panes() {
        let mut p = PaneSet::default();
        for t in 0..10 {
            p.add(t * 100, 1, 1, 100, Agg::Count);
        }
        assert_eq!(p.len(), 10);
        let evicted = p.evict_before(500);
        assert_eq!(evicted, 5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.total_count(), 5);
    }

    #[test]
    fn sliding_windows_overlap() {
        // size 40, slide 10: the window [0,40) and [10,50) share panes.
        let mut p = PaneSet::default();
        p.add(5, 10, 1, 10, Agg::Max);
        p.add(45, 20, 1, 10, Agg::Max);
        assert_eq!(p.window_agg(40, 40, Agg::Max), Some((10, 1)));
        // Window [10, 50): only the t=45 record's pane is inside.
        assert_eq!(p.window_agg(50, 40, Agg::Max), Some((20, 1)));
        // Window [0, 50) via size 50 sees both panes.
        assert_eq!(p.window_agg(50, 50, Agg::Max), Some((20, 2)));
    }

    #[test]
    fn empty_window_is_none() {
        let p = PaneSet::default();
        assert_eq!(p.window_agg(100, 50, Agg::Sum), None);
    }
}
