//! Execution-semantics checking.
//!
//! The correctness criterion from the paper (§III-A): for deterministic
//! operators, a scaled execution must be indistinguishable from a
//! non-scaled one. Cross-channel interleaving is inherently nondeterministic
//! (network timing), so the checkable invariant is:
//!
//! > For every key, the sequence of records applied to that key's state must
//! > preserve each upstream instance's emission order.
//!
//! All semantics-preserving mechanisms (DRRS, OTFS, Megaphone) must produce
//! zero violations; Unbound violates it by design, and Meces'
//! fetch-on-demand can violate it (§II-B) — our tests assert both.

use std::collections::HashMap;

use crate::ids::{InstId, Key, OpId};

/// Tracks per-(operator, key, upstream-instance) sequence monotonicity.
#[derive(Default)]
pub struct SemanticsChecker {
    last_seq: HashMap<(OpId, Key, InstId), u64>,
    violations: u64,
    samples: Vec<(OpId, Key, InstId, u64, u64)>,
}

impl SemanticsChecker {
    /// Create an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a record application. `seq` is the upstream emission
    /// sequence number stamped at the emitting instance.
    pub fn observe(&mut self, op: OpId, key: Key, upstream: InstId, seq: u64) {
        let slot = self.last_seq.entry((op, key, upstream)).or_insert(0);
        if seq < *slot {
            self.violations += 1;
            if self.samples.len() < 16 {
                self.samples.push((op, key, upstream, *slot, seq));
            }
        }
        *slot = (*slot).max(seq);
    }

    /// Number of order violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// A few example violations (for diagnostics).
    pub fn samples(&self) -> &[(OpId, Key, InstId, u64, u64)] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_is_clean() {
        let mut c = SemanticsChecker::new();
        for s in 1..100 {
            c.observe(OpId(1), 7, InstId(0), s);
        }
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn regression_is_flagged() {
        let mut c = SemanticsChecker::new();
        c.observe(OpId(1), 7, InstId(0), 5);
        c.observe(OpId(1), 7, InstId(0), 3);
        assert_eq!(c.violations(), 1);
        assert_eq!(c.samples().len(), 1);
    }

    #[test]
    fn different_keys_and_upstreams_are_independent() {
        let mut c = SemanticsChecker::new();
        c.observe(OpId(1), 7, InstId(0), 5);
        c.observe(OpId(1), 8, InstId(0), 1); // other key: fine
        c.observe(OpId(1), 7, InstId(1), 1); // other upstream: fine
        c.observe(OpId(2), 7, InstId(0), 1); // other operator: fine
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn equal_seq_is_not_a_violation() {
        // Batched records may share a sequence number.
        let mut c = SemanticsChecker::new();
        c.observe(OpId(1), 7, InstId(0), 5);
        c.observe(OpId(1), 7, InstId(0), 5);
        assert_eq!(c.violations(), 0);
    }
}
