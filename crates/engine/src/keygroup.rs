//! Key-group → instance routing tables and repartitioning plans.
//!
//! Each *predecessor instance* of a keyed edge holds its own copy of the
//! routing table (paper §II-A: "routing tables in predecessors tracking this
//! partitioning"); scaling mechanisms update the copies individually, which
//! is exactly what makes synchronization non-trivial.

use crate::ids::{InstId, KeyGroup};

/// A key-group → instance assignment for one keyed edge, as seen by one
/// predecessor instance.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    map: Vec<InstId>, // indexed by key-group
}

impl RoutingTable {
    /// Uniform range assignment of `max_key_groups` onto `targets` (Flink's
    /// default: contiguous ranges of size `ceil`/`floor`).
    pub fn uniform(max_key_groups: u16, targets: &[InstId]) -> Self {
        assert!(!targets.is_empty(), "routing to zero instances");
        let n = targets.len() as u32;
        let k = max_key_groups as u32;
        let map = (0..k)
            .map(|kg| {
                // Flink's computeOperatorIndexForKeyGroup: kg * n / k.
                targets[(kg * n / k) as usize]
            })
            .collect();
        Self { map }
    }

    /// Look up the destination instance for a key-group.
    #[inline]
    pub fn route(&self, kg: KeyGroup) -> InstId {
        self.map[kg.0 as usize]
    }

    /// Re-point one key-group to a new destination.
    pub fn set(&mut self, kg: KeyGroup, to: InstId) {
        self.map[kg.0 as usize] = to;
    }

    /// All key-groups currently routed to `inst`, in key-group order.
    /// Iterator-based so callers that only count or scan do not allocate;
    /// collect if a `Vec` is needed.
    pub fn groups_of(&self, inst: InstId) -> impl Iterator<Item = KeyGroup> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(move |&(_, &t)| t == inst)
            .map(|(i, _)| KeyGroup(i as u16))
    }

    /// Number of key-groups in the table.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the table is empty (never for a built table).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One key-group move within a scaling plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KgMove {
    /// The key-group being migrated.
    pub kg: KeyGroup,
    /// Source instance (must currently own `kg`).
    pub from: InstId,
    /// Destination instance.
    pub to: InstId,
}

/// Re-partitioning strategy for the Scale Planner (paper component C0 uses
/// [`Repartition::Uniform`]; [`Repartition::MinimalMoves`] is the
/// consistent-hashing-style alternative from the related work [27, 53, 54]
/// that minimizes the number of migrated units).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Repartition {
    /// Flink-style contiguous uniform ranges (the paper's default). Simple
    /// and balanced, but an 8→12 expansion moves 111 of 128 key-groups.
    #[default]
    Uniform,
    /// Keep every key-group in place unless an instance is over its fair
    /// share; reassign only the excess (fewest possible moves, still
    /// balanced to within one group).
    MinimalMoves,
}

/// Compute the moves required to go from the `old` assignment to the uniform
/// assignment over `new_targets` (the paper's "uniform re-partitioning
/// strategy", Scale Planner C0).
pub fn uniform_repartition(old: &RoutingTable, new_targets: &[InstId]) -> Vec<KgMove> {
    let new = RoutingTable::uniform(old.len() as u16, new_targets);
    (0..old.len() as u16)
        .filter_map(|i| {
            let kg = KeyGroup(i);
            let (f, t) = (old.route(kg), new.route(kg));
            (f != t).then_some(KgMove { kg, from: f, to: t })
        })
        .collect()
}

/// Compute a move-minimal, balanced re-partitioning: each target ends up
/// with `floor(K/n)` or `ceil(K/n)` groups and only over-quota groups move.
pub fn minimal_repartition(old: &RoutingTable, new_targets: &[InstId]) -> Vec<KgMove> {
    let k = old.len();
    let n = new_targets.len();
    assert!(n > 0, "repartition to zero instances");
    let base = k / n;
    let extra = k % n; // the first `extra` targets hold base+1
    let quota = |idx: usize| if idx < extra { base + 1 } else { base };

    // Current per-target holdings, restricted to groups whose current owner
    // survives into the new target set.
    let mut held: Vec<Vec<KeyGroup>> = vec![Vec::new(); n];
    let mut homeless: Vec<KeyGroup> = Vec::new();
    for g in 0..k as u16 {
        let kg = KeyGroup(g);
        match new_targets.iter().position(|&t| t == old.route(kg)) {
            Some(i) => held[i].push(kg),
            None => homeless.push(kg), // owner is being removed (scale-in)
        }
    }
    // Shed over-quota groups (take from the back: lexicographically last).
    let mut pool = homeless;
    for (i, h) in held.iter_mut().enumerate() {
        while h.len() > quota(i) {
            pool.push(h.pop().expect("over quota"));
        }
    }
    // Hand the pool to under-quota targets.
    let mut moves = Vec::new();
    pool.sort();
    let mut pool = pool.into_iter();
    for (i, &target) in new_targets.iter().enumerate() {
        while held[i].len() < quota(i) {
            let kg = pool.next().expect("pool balances quotas exactly");
            let from = old.route(kg);
            if from != target {
                moves.push(KgMove {
                    kg,
                    from,
                    to: target,
                });
            }
            held[i].push(kg);
        }
    }
    debug_assert!(pool.next().is_none(), "pool not exhausted");
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insts(n: u32) -> Vec<InstId> {
        (0..n).map(InstId).collect()
    }

    #[test]
    fn uniform_covers_all_groups() {
        let t = RoutingTable::uniform(128, &insts(8));
        let mut counts = vec![0u32; 8];
        for i in 0..128 {
            counts[t.route(KeyGroup(i)).0 as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 128);
        // 128 / 8 = exactly 16 each.
        assert!(counts.iter().all(|&c| c == 16), "{counts:?}");
    }

    #[test]
    fn uniform_uneven_split_is_balanced() {
        let t = RoutingTable::uniform(128, &insts(12));
        let mut counts = vec![0u32; 12];
        for i in 0..128 {
            counts[t.route(KeyGroup(i)).0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10 || c == 11), "{counts:?}");
    }

    #[test]
    fn paper_8_to_12_moves_111_of_128() {
        // Paper §V-B: expanding 8→12 instances migrates 111 of 128
        // key-groups under uniform re-partitioning.
        let old = RoutingTable::uniform(128, &insts(8));
        let moves = uniform_repartition(&old, &insts(12));
        assert_eq!(moves.len(), 111);
    }

    #[test]
    fn paper_25_to_30_moves_229_of_256() {
        // Paper §V-D: 256 key-groups, 25→30 instances triggers migration of
        // 229 key-groups.
        let old = RoutingTable::uniform(256, &insts(25));
        let moves = uniform_repartition(&old, &insts(30));
        assert_eq!(moves.len(), 229);
    }

    #[test]
    fn moves_are_consistent_with_tables() {
        let old = RoutingTable::uniform(64, &insts(4));
        let new_targets = insts(6);
        let moves = uniform_repartition(&old, &new_targets);
        let new = RoutingTable::uniform(64, &new_targets);
        for m in &moves {
            assert_eq!(old.route(m.kg), m.from);
            assert_eq!(new.route(m.kg), m.to);
            assert_ne!(m.from, m.to);
        }
        // Non-moving groups stay put.
        let moving: std::collections::HashSet<_> = moves.iter().map(|m| m.kg).collect();
        for i in 0..64u16 {
            let kg = KeyGroup(i);
            if !moving.contains(&kg) {
                assert_eq!(old.route(kg), new.route(kg));
            }
        }
    }

    #[test]
    fn minimal_moves_fewer_than_uniform() {
        let old = RoutingTable::uniform(128, &insts(8));
        let uni = uniform_repartition(&old, &insts(12));
        let min = minimal_repartition(&old, &insts(12));
        assert_eq!(uni.len(), 111);
        // 8 instances shed down to the 10/11 quota: 128 - (8*10 + eight of
        // the 11-quotas already full)… concretely ~43 moves.
        assert!(min.len() < uni.len() / 2, "minimal moved {}", min.len());
        // Result is balanced to within one group.
        let mut counts = std::collections::HashMap::new();
        let mut new = old.clone();
        for m in &min {
            new.set(m.kg, m.to);
        }
        for g in 0..128 {
            *counts.entry(new.route(KeyGroup(g))).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 12);
        let (lo, hi) = (
            counts.values().min().copied().expect("instances"),
            counts.values().max().copied().expect("instances"),
        );
        assert!(hi - lo <= 1, "{counts:?}");
    }

    #[test]
    fn minimal_moves_handles_scale_in() {
        let old = RoutingTable::uniform(64, &insts(4));
        // Shrink to 2 survivors: every group owned by the removed pair moves.
        let survivors = insts(2);
        let min = minimal_repartition(&old, &survivors);
        assert_eq!(min.len(), 32);
        for m in &min {
            assert!(survivors.contains(&m.to));
            assert!(!survivors.contains(&m.from));
        }
    }

    #[test]
    fn groups_of_inverts_route() {
        let t = RoutingTable::uniform(32, &insts(4));
        for inst in insts(4) {
            for kg in t.groups_of(inst) {
                assert_eq!(t.route(kg), inst);
            }
        }
    }

    #[test]
    fn set_repoints_single_group() {
        let mut t = RoutingTable::uniform(16, &insts(2));
        t.set(KeyGroup(0), InstId(1));
        assert_eq!(t.route(KeyGroup(0)), InstId(1));
    }
}
