//! Run-level measurement: end-to-end latency (via markers), source
//! throughput, cumulative suspension, and the paper's scaling-period
//! detector.

use simcore::stats::{Histogram, TimeSeries};
use simcore::time::{as_ms, SimTime, MICROS_PER_SEC};

/// All measurements collected during a run.
#[derive(Default)]
pub struct Metrics {
    /// End-to-end latency samples `(sink arrival time, latency µs)`.
    pub latency: TimeSeries,
    /// Latency distribution (all samples, whole run).
    pub latency_hist: Histogram,
    /// Records emitted by sources, bucketed per second.
    pub source_counts: Vec<(u64, u64)>,
    /// Cumulative suspension time across scaled-operator instances,
    /// sampled periodically: `(time, cumulative µs)`.
    pub suspension: TimeSeries,
    /// Checkpoint completion times `(time, duration µs)`.
    pub checkpoints: TimeSeries,
    /// Per-key order violations observed by the semantics checker.
    pub order_violations: u64,
    /// Total records delivered to sinks.
    pub sink_records: u64,
}

impl Metrics {
    /// Record a marker latency sample.
    pub fn record_latency(&mut self, at: SimTime, latency: SimTime) {
        self.latency.push(at, latency as f64);
        self.latency_hist.record(latency);
    }

    /// Latency quantile over the whole run, in milliseconds.
    pub fn latency_quantile_ms(&self, q: f64) -> Option<f64> {
        self.latency_hist.quantile(q).map(as_ms)
    }

    /// Count source emissions at time `at`.
    pub fn count_source(&mut self, at: SimTime, n: u64) {
        let sec = at / MICROS_PER_SEC;
        match self.source_counts.last_mut() {
            Some((s, c)) if *s == sec => *c += n,
            _ => self.source_counts.push((sec, n)),
        }
    }

    /// Source throughput as a `(second, records/s)` series.
    pub fn throughput(&self) -> Vec<(u64, f64)> {
        self.source_counts
            .iter()
            .map(|&(s, c)| (s, c as f64))
            .collect()
    }

    /// Mean source throughput over `[lo, hi)` seconds.
    pub fn mean_throughput(&self, lo: u64, hi: u64) -> f64 {
        mean_per_second(
            self.source_counts.iter().map(|&(s, c)| (s, c as f64)),
            lo,
            hi,
        )
    }

    /// Peak and mean latency (ms) over `[lo, hi)` µs.
    pub fn latency_stats_ms(&self, lo: SimTime, hi: SimTime) -> (f64, f64) {
        let peak = self.latency.peak(lo, hi).unwrap_or(0.0);
        let mean = self.latency.mean(lo, hi).unwrap_or(0.0);
        (as_ms(peak as SimTime), as_ms(mean as SimTime))
    }

    /// The paper's scaling-period end: the first time ≥ `scale_start` at
    /// which latency stays within `factor` × the pre-scale mean for `hold`.
    pub fn scaling_period_end(
        &self,
        scale_start: SimTime,
        pre_window: SimTime,
        factor: f64,
        hold: SimTime,
    ) -> Option<SimTime> {
        let pre = self
            .latency
            .mean(scale_start.saturating_sub(pre_window), scale_start)?;
        self.latency.stabilize_time(scale_start, pre * factor, hold)
    }
}

/// Mean of a per-second `(second, value)` series over `[lo, hi)` seconds,
/// **counting empty seconds as 0** (the denominator is the wall-clock
/// window, not the sample count). This is the single definition of the
/// windowed-throughput rule: [`Metrics::mean_throughput`] uses it on the
/// live counters, and `bench`'s `RunReport` uses it on the serialized
/// series, so the two can never diverge.
pub fn mean_per_second(series: impl Iterator<Item = (u64, f64)>, lo: u64, hi: u64) -> f64 {
    let mut any = false;
    let mut sum = 0.0;
    for (s, v) in series {
        if s >= lo && s < hi {
            any = true;
            sum += v;
        }
    }
    if any {
        sum / (hi - lo) as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::secs;

    #[test]
    fn throughput_buckets_per_second() {
        let mut m = Metrics::default();
        m.count_source(100, 10);
        m.count_source(200, 5);
        m.count_source(MICROS_PER_SEC + 1, 7);
        assert_eq!(m.throughput(), vec![(0, 15.0), (1, 7.0)]);
        assert!((m.mean_throughput(0, 2) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn latency_quantiles_from_hist() {
        let mut m = Metrics::default();
        for i in 1..=100u64 {
            m.record_latency(secs(1), i * 1000);
        }
        let p50 = m.latency_quantile_ms(0.5).expect("data");
        let p99 = m.latency_quantile_ms(0.99).expect("data");
        assert!((30.0..=80.0).contains(&p50), "p50={p50}");
        assert!(p99 >= p50);
        assert_eq!(Metrics::default().latency_quantile_ms(0.5), None);
    }

    #[test]
    fn latency_stats_window() {
        let mut m = Metrics::default();
        m.record_latency(secs(1), 10_000);
        m.record_latency(secs(2), 30_000);
        m.record_latency(secs(10), 500_000);
        let (peak, mean) = m.latency_stats_ms(0, secs(5));
        assert!((peak - 30.0).abs() < 1e-9);
        assert!((mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_period_detection() {
        let mut m = Metrics::default();
        // Pre-scale: steady 10 ms.
        for s in 0..100 {
            m.record_latency(secs(s), 10_000);
        }
        // Scale at 100 s: spike until 150 s, then quiet for 150 s.
        for s in 100..150 {
            m.record_latency(secs(s), 200_000);
        }
        for s in 150..310 {
            m.record_latency(secs(s), 10_500);
        }
        let end = m.scaling_period_end(secs(100), secs(50), 1.10, secs(100));
        assert_eq!(end, Some(secs(150)));
    }

    #[test]
    fn mean_throughput_counts_gaps_as_zero() {
        let mut m = Metrics::default();
        m.count_source(0, 100);
        // seconds 1..10 produce nothing
        assert!((m.mean_throughput(0, 10) - 10.0).abs() < 1e-9);
    }
}
