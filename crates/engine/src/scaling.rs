//! The scaling plugin API and the engine-side scaling context.
//!
//! All rescaling mechanisms — DRRS, Megaphone, Meces, generalized OTFS,
//! Unbound, Stop-Checkpoint-Restart — implement [`ScalePlugin`]. The engine
//! owns the generic machinery every mechanism needs (deployment, migration
//! links, per-unit metrics, suspension accounting) and calls the plugin at
//! a small set of decision points.

use std::collections::HashMap;
use std::collections::VecDeque;

use simcore::SimTime;

use crate::ids::{ChannelId, InstId, KeyGroup, OpId, SubscaleId};
use crate::keygroup::KgMove;
use crate::record::{Record, ScaleSignal};
use crate::state::StateUnit;
use crate::world::World;

/// A scaling plan: which operator scales and which key-groups move where.
#[derive(Clone, Debug)]
pub struct ScalePlan {
    /// The scaling operator.
    pub op: OpId,
    /// Parallelism before scaling.
    pub old_parallelism: usize,
    /// Parallelism after scaling.
    pub new_parallelism: usize,
    /// Re-partitioning strategy (Scale Planner C0 policy).
    pub strategy: crate::keygroup::Repartition,
    /// Key-group moves (filled in by the engine at deploy time using the
    /// planner's repartitioning strategy).
    pub moves: Vec<KgMove>,
}

/// What an instance's input selection decided.
pub enum Selection {
    /// A control element popped from `ch` that the engine must now handle
    /// (watermark, checkpoint barrier, in-band scale signal).
    Control(ChannelId, crate::record::StreamElement),
    /// A run of data records (already popped) to process as one quantum.
    Run {
        /// Records in processing order.
        records: Vec<Record>,
        /// Total busy time for the quantum.
        service: SimTime,
    },
    /// Inputs exist but none is admissible — the instance suspends.
    Suspend,
    /// Nothing to do.
    Idle,
}

/// A pluggable rescaling mechanism.
///
/// Methods take `&mut World` — the plugin is held outside the world by the
/// simulation driver, so there is no aliasing.
pub trait ScalePlugin {
    /// Mechanism name (for reports).
    fn name(&self) -> &'static str;

    /// The deployment finished; the mechanism takes over. `plan.moves` is
    /// final. This is where signals get injected (or scheduled).
    fn on_scale_start(&mut self, w: &mut World, plan: &ScalePlan);

    /// An in-band scale signal was consumed at `inst` from channel `ch`.
    fn on_signal(&mut self, w: &mut World, inst: InstId, ch: ChannelId, sig: ScaleSignal);

    /// A priority (out-of-band) signal arrived at `inst`.
    fn on_priority_signal(&mut self, _w: &mut World, _inst: InstId, _sig: ScaleSignal) {}

    /// A migrated state unit arrived at `inst`.
    fn on_chunk(
        &mut self,
        w: &mut World,
        inst: InstId,
        unit: StateUnit,
        subscale: SubscaleId,
        from: InstId,
    );

    /// Re-routed records arrived at `inst` (DRRS-style mechanisms).
    fn on_rerouted_records(
        &mut self,
        _w: &mut World,
        _inst: InstId,
        _from: InstId,
        _records: Vec<Record>,
    ) {
    }

    /// A re-routed confirm barrier arrived at `inst`.
    fn on_rerouted_confirm(
        &mut self,
        _w: &mut World,
        _inst: InstId,
        _from: InstId,
        _sig: ScaleSignal,
    ) {
    }

    /// A fetch request arrived at `inst` (Meces).
    fn on_fetch(
        &mut self,
        _w: &mut World,
        _inst: InstId,
        _kg: KeyGroup,
        _sub: u8,
        _requester: InstId,
    ) {
    }

    /// A plugin timer (scheduled via [`World::schedule_plugin`]) fired.
    fn on_control(&mut self, _w: &mut World, _tag: u64) {}

    /// Does this plugin currently override input selection at `inst`?
    /// When `false`, the engine's default (active-channel) selection runs
    /// with [`ScalePlugin::admit`] as the admission filter.
    fn selects(&self, _w: &World, _inst: InstId) -> bool {
        false
    }

    /// Custom input selection for `inst` (only called when
    /// [`ScalePlugin::selects`] returns true).
    fn select(&mut self, _w: &mut World, _inst: InstId) -> Selection {
        Selection::Idle
    }

    /// May this data record be processed at `inst` right now? The default
    /// filter admits everything (non-scaling operation). Implementations may
    /// have side effects (e.g. Meces issues a fetch on a miss).
    fn admit(&mut self, _w: &mut World, _inst: InstId, _ch: ChannelId, _rec: &Record) -> bool {
        true
    }

    /// Called after a record was applied at a scaling-operator instance
    /// (post-processing hook; e.g. Meces forward tracking).
    fn after_record(&mut self, _w: &mut World, _inst: InstId, _rec: &Record) {}

    /// A record reached application but its state sub-group is not locally
    /// present (it was extracted between admission and quantum completion,
    /// or the mechanism tolerates missing state). Return `true` if the
    /// plugin consumed the record (re-routed / buffered / fetched);
    /// returning `false` lets the engine treat it as a hard error.
    ///
    /// Unbound implements its "universal keys" here by creating an empty
    /// local group and returning `false` so processing proceeds.
    fn on_orphan_record(&mut self, _w: &mut World, _inst: InstId, _rec: &Record) -> bool {
        false
    }

    /// Is a scaling operation still in progress? Used by run loops that end
    /// when scaling completes.
    fn active(&self) -> bool {
        false
    }
}

/// A no-op plugin for non-scaling runs (the paper's "No Scale" line).
pub struct NoScale;

impl ScalePlugin for NoScale {
    fn name(&self) -> &'static str {
        "no-scale"
    }
    fn on_scale_start(&mut self, _w: &mut World, _plan: &ScalePlan) {}
    fn on_signal(&mut self, _w: &mut World, _inst: InstId, _ch: ChannelId, _sig: ScaleSignal) {}
    fn on_chunk(&mut self, _w: &mut World, _i: InstId, _u: StateUnit, _s: SubscaleId, _f: InstId) {}
}

/// State of one migration link (one per sending instance: the container NIC
/// serializes outgoing chunks).
#[derive(Default)]
pub struct LinkState {
    /// Chunks waiting to be serialized+sent: `(dest, unit, subscale)`.
    pub queue: VecDeque<(InstId, StateUnit, SubscaleId)>,
    /// Is a chunk currently on the wire?
    pub busy: bool,
}

/// Timing metrics for the paper's three overhead classes plus bookkeeping.
#[derive(Default)]
pub struct ScaleMetrics {
    /// When the harness requested the scale.
    pub requested_at: Option<SimTime>,
    /// When the new containers became operational.
    pub deployed_at: Option<SimTime>,
    /// Per subscale: signal injection time.
    pub injected: HashMap<SubscaleId, SimTime>,
    /// Per subscale: first chunk send start (propagation delay end point).
    pub first_migration: HashMap<SubscaleId, SimTime>,
    /// Per state unit `(kg, sub)`: governing signal injection time.
    pub unit_injected: HashMap<(u16, u8), SimTime>,
    /// Per state unit: install time at the destination.
    pub unit_installed: HashMap<(u16, u8), SimTime>,
    /// Per state unit: number of times it has been migrated (Meces
    /// back-and-forth counting; 1 for everyone else).
    pub unit_migrations: HashMap<(u16, u8), u32>,
    /// When every planned move had been installed at its final destination.
    pub migration_done: Option<SimTime>,
    /// Total bytes transferred over migration links.
    pub bytes_transferred: u64,
}

impl ScaleMetrics {
    /// Cumulative propagation delay `Lp`: Σ over signals of
    /// (first migration − injection). Units: µs.
    pub fn cumulative_propagation_delay(&self) -> SimTime {
        self.injected
            .iter()
            .filter_map(|(ss, &inj)| {
                self.first_migration
                    .get(ss)
                    .map(|&fm| fm.saturating_sub(inj))
            })
            .sum()
    }

    /// Average dependency-related overhead `Ld`: mean over state units of
    /// (install − injection). Units: µs.
    pub fn avg_dependency_overhead(&self) -> f64 {
        let mut n = 0u64;
        let mut sum = 0u64;
        for (unit, &inst_t) in &self.unit_installed {
            if let Some(&inj) = self.unit_injected.get(unit) {
                n += 1;
                sum += inst_t.saturating_sub(inj);
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// `(average, max)` migrations per state unit (Meces fetch conflicts).
    pub fn migration_churn(&self) -> (f64, u32) {
        if self.unit_migrations.is_empty() {
            return (0.0, 0);
        }
        let total: u64 = self.unit_migrations.values().map(|&c| c as u64).sum();
        let max = self.unit_migrations.values().copied().max().unwrap_or(0);
        (total as f64 / self.unit_migrations.len() as f64, max)
    }
}

/// The set of instances being retired by a scale-in. Membership is probed
/// once per routed record on rebalance/broadcast edges while a scale-in
/// drains, so the test is a fixed-size bitset read keyed by the (dense)
/// instance index — O(1) instead of the former `Vec` scan, which mattered
/// once operators with hundreds of instances became a target. The ordered
/// list is kept alongside for the (cold) retirement sweep.
#[derive(Default)]
pub struct RetiringSet {
    /// Retiring instances in retirement order (cold-path iteration).
    list: Vec<InstId>,
    /// Bitset over dense instance indices (hot-path membership).
    bits: Vec<u64>,
}

impl RetiringSet {
    /// Is `i` retiring? One word read + mask — the per-routed-record probe.
    #[inline]
    pub fn contains(&self, i: InstId) -> bool {
        self.bits
            .get((i.0 / 64) as usize)
            .is_some_and(|w| w & (1u64 << (i.0 % 64)) != 0)
    }

    /// Replace the whole set (scale-in start). The bitset is sized once to
    /// cover the highest instance index and never grows mid-drain.
    pub fn assign(&mut self, ids: &[InstId]) {
        self.clear();
        for &i in ids {
            self.insert(i);
        }
    }

    /// Add one instance.
    pub fn insert(&mut self, i: InstId) {
        if self.contains(i) {
            return;
        }
        let w = (i.0 / 64) as usize;
        if self.bits.len() <= w {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1u64 << (i.0 % 64);
        self.list.push(i);
    }

    /// Remove one instance (it finished draining and was halted).
    pub fn remove(&mut self, i: InstId) {
        if let Some(w) = self.bits.get_mut((i.0 / 64) as usize) {
            *w &= !(1u64 << (i.0 % 64));
        }
        self.list.retain(|&x| x != i);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.list.clear();
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// No instance is retiring.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Retiring instances in retirement order.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.list.iter().copied()
    }
}

/// Engine-side scaling context shared by all mechanisms.
#[derive(Default)]
pub struct ScaleContext {
    /// Monotonic scale-operation counter.
    pub epoch: u32,
    /// The plan currently deploying or active.
    pub plan: Option<ScalePlan>,
    /// Instances created by the current scale.
    pub new_instances: Vec<InstId>,
    /// Instances being removed by the current scale-in (they stop receiving
    /// new traffic immediately and are halted once drained).
    pub retiring: RetiringSet,
    /// Migration link per sending instance.
    pub links: HashMap<InstId, LinkState>,
    /// Location registry of moving state units (Meces fetch-on-demand and
    /// conservation checks): `(kg, sub) → (holder, in_transit_to)`.
    pub unit_loc: HashMap<(u16, u8), (InstId, Option<InstId>)>,
    /// Metrics for the current (or last) scale.
    pub metrics: ScaleMetrics,
    /// True between `StartScale` and migration completion.
    pub in_progress: bool,
}

impl ScaleContext {
    /// Key-groups moving in the current plan, with their source/destination.
    pub fn moving(&self) -> impl Iterator<Item = &KgMove> + '_ {
        self.plan.iter().flat_map(|p| p.moves.iter())
    }

    /// Is this key-group part of the current plan?
    pub fn is_moving(&self, kg: KeyGroup) -> bool {
        self.moving().any(|m| m.kg == kg)
    }

    /// The move entry for a key-group, if it is moving.
    pub fn move_of(&self, kg: KeyGroup) -> Option<&KgMove> {
        self.plan.as_ref()?.moves.iter().find(|m| m.kg == kg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_sums_per_signal() {
        let mut m = ScaleMetrics::default();
        m.injected.insert(SubscaleId(0), 100);
        m.injected.insert(SubscaleId(1), 200);
        m.first_migration.insert(SubscaleId(0), 150);
        m.first_migration.insert(SubscaleId(1), 290);
        assert_eq!(m.cumulative_propagation_delay(), 50 + 90);
    }

    #[test]
    fn lp_ignores_signals_without_migration() {
        let mut m = ScaleMetrics::default();
        m.injected.insert(SubscaleId(0), 100);
        assert_eq!(m.cumulative_propagation_delay(), 0);
    }

    #[test]
    fn ld_averages_units() {
        let mut m = ScaleMetrics::default();
        m.unit_injected.insert((1, 0), 100);
        m.unit_injected.insert((2, 0), 100);
        m.unit_installed.insert((1, 0), 200);
        m.unit_installed.insert((2, 0), 400);
        assert!((m.avg_dependency_overhead() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn churn_reports_avg_and_max() {
        let mut m = ScaleMetrics::default();
        m.unit_migrations.insert((1, 0), 1);
        m.unit_migrations.insert((2, 0), 7);
        let (avg, max) = m.migration_churn();
        assert!((avg - 4.0).abs() < 1e-9);
        assert_eq!(max, 7);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn context_move_lookup() {
        let mut ctx = ScaleContext::default();
        ctx.plan = Some(ScalePlan {
            op: OpId(1),
            old_parallelism: 2,
            new_parallelism: 3,
            strategy: Default::default(),
            moves: vec![KgMove {
                kg: KeyGroup(5),
                from: InstId(1),
                to: InstId(9),
            }],
        });
        assert!(ctx.is_moving(KeyGroup(5)));
        assert!(!ctx.is_moving(KeyGroup(6)));
        assert_eq!(ctx.move_of(KeyGroup(5)).map(|m| m.to), Some(InstId(9)));
    }
}
