//! The simulation event vocabulary.

use crate::ids::{ChannelId, InstId, KeyGroup, SubscaleId};
use crate::record::{Record, RecordRef, ScaleSignal};
use crate::scaling::ScalePlan;
use crate::state::StateUnit;

/// A priority message: delivered directly to the destination instance's
/// handler, bypassing channel queues (Flink priority events). Trigger
/// barriers, state chunks, fetch requests and re-routed items travel this
/// way.
#[derive(Debug)]
pub enum PriorityMsg {
    /// A scaling signal delivered out-of-band (DRRS trigger barriers).
    Signal(ScaleSignal),
    /// A migrated state unit arriving at its destination.
    Chunk {
        /// The state itself.
        unit: Box<StateUnit>,
        /// Which subscale (or batch) it belongs to.
        subscale: SubscaleId,
        /// The instance it came from.
        from: InstId,
    },
    /// Re-routed records (epoch `Ep`) forwarded by the old instance.
    ReroutedRecords {
        /// Origin (old) instance.
        from: InstId,
        /// The records, in their original per-channel order.
        records: Vec<Record>,
    },
    /// A re-routed confirm barrier (implicit alignment).
    ReroutedConfirm {
        /// Origin (old) instance.
        from: InstId,
        /// The original confirm signal.
        signal: ScaleSignal,
    },
    /// Meces fetch-on-demand request: "send me this state unit".
    Fetch {
        /// Key-group requested.
        kg: KeyGroup,
        /// Sub-group requested.
        sub: u8,
        /// Who wants it.
        requester: InstId,
    },
}

/// Out-of-band control commands (coordinator RPCs, plugin timers).
#[derive(Debug)]
pub enum ControlMsg {
    /// The harness requested a scaling operation (paper: user-request-based
    /// trigger in the Scale Planner).
    StartScale(ScalePlan),
    /// New containers finished initializing (after `deploy_delay`).
    DeployDone {
        /// Scale epoch this deployment belongs to.
        epoch: u32,
    },
    /// A mechanism-defined timer or command; the payload is plugin-private.
    Plugin(u64),
    /// Periodic checkpoint coordinator tick: injects barriers at sources.
    CheckpointTick,
}

/// A slot-allocating side-channel for the rare, large control-plane
/// payloads: `PriorityMsg` (with its boxed state chunks and re-routed
/// record vectors) and `ControlMsg` (with its embedded `ScalePlan`).
///
/// The queue-borne [`Ev::Priority`] / [`Ev::Control`] events carry only a
/// `u32` slot handle into this store; the payload parks here until the
/// dispatcher consumes the event and `take`s it back out. Compared to the
/// old `Box<PriorityMsg>` / `Box<ControlMsg>` fields this deletes the
/// per-control-event heap allocation in steady state: slots are recycled
/// through a free list, so after warm-up every `put` is a write into an
/// already-allocated `Vec` cell (`events::tests` and the engine-level
/// recycling test pin the slab high-water mark). It also keeps `Ev: Copy`
/// -sized and shrinks the hot dispatch match — the control arms no longer
/// touch a pointer the branch predictor has to chase.
///
/// Slots are strictly one-shot: `put` hands out a slot, `take` consumes
/// it and recycles the index. Taking an empty slot is a logic error and
/// panics.
#[derive(Debug, Default)]
pub struct ControlStore {
    priority: Vec<Option<PriorityMsg>>,
    priority_free: Vec<u32>,
    control: Vec<Option<ControlMsg>>,
    control_free: Vec<u32>,
}

impl ControlStore {
    /// An empty store (no slabs allocated until the first control event).
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a priority message; returns the slot for [`Ev::Priority`].
    /// Steady state pops a recycled index off the free list — the grow
    /// path only runs while the live-slot high-water mark is still rising.
    // checker:hot-path
    pub fn put_priority(&mut self, msg: PriorityMsg) -> u32 {
        match self.priority_free.pop() {
            Some(slot) => {
                self.priority[slot as usize] = Some(msg);
                slot
            }
            None => {
                let slot = self.priority.len() as u32;
                self.priority.push(Some(msg));
                slot
            }
        }
    }

    /// Consume a priority slot (dispatch time) and recycle its index.
    // checker:hot-path
    pub fn take_priority(&mut self, slot: u32) -> PriorityMsg {
        let msg = self.priority[slot as usize]
            .take()
            .expect("priority slot taken twice or never filled");
        self.priority_free.push(slot);
        msg
    }

    /// Park a control command; returns the slot for [`Ev::Control`].
    // checker:hot-path
    pub fn put_control(&mut self, cmd: ControlMsg) -> u32 {
        match self.control_free.pop() {
            Some(slot) => {
                self.control[slot as usize] = Some(cmd);
                slot
            }
            None => {
                let slot = self.control.len() as u32;
                self.control.push(Some(cmd));
                slot
            }
        }
    }

    /// Consume a control slot (dispatch time) and recycle its index.
    // checker:hot-path
    pub fn take_control(&mut self, slot: u32) -> ControlMsg {
        let cmd = self.control[slot as usize]
            .take()
            .expect("control slot taken twice or never filled");
        self.control_free.push(slot);
        cmd
    }

    /// Slab high-water mark (total slots ever grown), priority + control.
    /// A run with thousands of control events but a small high-water mark
    /// is the recycling proof.
    pub fn high_water(&self) -> usize {
        self.priority.len() + self.control.len()
    }

    /// Currently occupied slots (parked, not yet dispatched).
    pub fn live(&self) -> usize {
        self.priority.len() - self.priority_free.len() + self.control.len()
            - self.control_free.len()
    }
}

/// Every event the simulator can dispatch.
///
/// # Size discipline
///
/// `Ev` is what every scheduler-backend bucket move, heap sift and batch
/// buffer copies, millions of times per run — its size is a hot-path
/// constant. The dominant traffic (`Deliver`, `ProcDone`, `SourceTick`,
/// `Wake`) carries at most 16 bytes inline; the rare, large control-plane
/// payloads park in the world's [`ControlStore`] side-channel and the
/// events carry only `u32` slot handles, so they can't inflate the enum
/// (and cost no per-event allocation). `events::ev_fits_in_16_bytes` pins
/// `size_of::<Ev>() <= 16`.
#[derive(Debug)]
pub enum Ev {
    /// Rate-controlled generation tick for a source instance.
    SourceTick {
        /// The source instance.
        inst: InstId,
    },
    /// An element coming off the wire into the receiver queue. Carries an
    /// arena handle, not the element: the payload stays parked in the
    /// world's `RecordArena`, so the event heap sifts 8-byte handles
    /// instead of ~56-byte stream elements.
    Deliver {
        /// Target channel.
        ch: ChannelId,
        /// Handle of the element in the record arena.
        elem: RecordRef,
        /// Did this element consume a credit when it was put on the wire?
        /// Credited deliveries must decrement `in_flight`; uncredited ones
        /// (priority barriers) bypass credit accounting entirely. The seed
        /// conflated the two with a silent `if in_flight > 0` clamp, which
        /// let uncredited barriers steal credits from in-flight data.
        credited: bool,
    },
    /// An out-of-band message arriving at an instance. The payload parks
    /// in the world's [`ControlStore`] (priority messages are
    /// control-plane-rare and far larger than the hot variants); the
    /// event carries only the slot handle.
    Priority {
        /// Destination instance.
        to: InstId,
        /// Payload slot in the [`ControlStore`].
        slot: u32,
    },
    /// An instance finished its current processing quantum.
    ProcDone {
        /// The instance.
        inst: InstId,
        /// Generation guard (stale completions are ignored).
        gen: u64,
    },
    /// A migration link finished serializing+sending its current chunk.
    LinkSendDone {
        /// Sending instance.
        from: InstId,
    },
    /// Control-plane command. `StartScale` embeds a whole `ScalePlan`, and
    /// control events are a vanishing fraction of traffic, so the command
    /// parks in the [`ControlStore`] and the event carries its slot.
    Control {
        /// Payload slot in the [`ControlStore`].
        slot: u32,
    },
    /// Credits returning to a cut channel's sender region (PDES mode,
    /// `resume_latency > 0`): the receiver popped `n` elements off the cut
    /// channel and, instead of pumping the sender's backlog synchronously,
    /// notifies the sender's region after `resume_latency` — the
    /// latency-bearing resume notice that gives reverse cut edges real
    /// lookahead.
    CutCredit {
        /// The cut channel whose sender gets the credits.
        ch: ChannelId,
        /// Number of credits returned.
        n: u32,
    },
    /// Periodic metric sampling.
    Sample,
    /// Re-examine an instance (generic wake-up; used after unblocking).
    Wake {
        /// The instance to re-examine.
        inst: InstId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_fits_in_16_bytes() {
        // The scheduler moves `Ev` through every bucket append, heap sift
        // and batch-drain copy; the rare large control payloads park in
        // the `ControlStore` side-channel precisely so the enum stays at
        // the size of its hot `Deliver` variant. A regression here is a
        // silent tax on the whole simulator — treat it like a perf bug,
        // not a style nit.
        assert!(
            std::mem::size_of::<Ev>() <= 16,
            "Ev grew to {} bytes — park the offending payload in the ControlStore",
            std::mem::size_of::<Ev>()
        );
    }

    #[test]
    fn control_store_recycles_slots() {
        let mut s = ControlStore::new();
        // Interleaved put/take traffic must plateau at the high-water
        // mark of *live* slots, not grow with total event count.
        for round in 0..1000u64 {
            let a = s.put_control(ControlMsg::Plugin(round));
            let b = s.put_control(ControlMsg::CheckpointTick);
            match s.take_control(a) {
                ControlMsg::Plugin(v) => assert_eq!(v, round),
                other => panic!("slot mix-up: {other:?}"),
            }
            assert!(matches!(s.take_control(b), ControlMsg::CheckpointTick));
        }
        assert_eq!(s.live(), 0);
        assert!(
            s.high_water() <= 2,
            "free list not recycling: {} slots grown for 2 live max",
            s.high_water()
        );
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn control_store_slots_are_one_shot() {
        let mut s = ControlStore::new();
        let slot = s.put_priority(PriorityMsg::Fetch {
            kg: KeyGroup(0),
            sub: 0,
            requester: InstId(0),
        });
        let _ = s.take_priority(slot);
        let _ = s.take_priority(slot);
    }
}
