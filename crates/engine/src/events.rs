//! The simulation event vocabulary.

use crate::ids::{ChannelId, InstId, KeyGroup, SubscaleId};
use crate::record::{Record, RecordRef, ScaleSignal};
use crate::scaling::ScalePlan;
use crate::state::StateUnit;

/// A priority message: delivered directly to the destination instance's
/// handler, bypassing channel queues (Flink priority events). Trigger
/// barriers, state chunks, fetch requests and re-routed items travel this
/// way.
#[derive(Debug)]
pub enum PriorityMsg {
    /// A scaling signal delivered out-of-band (DRRS trigger barriers).
    Signal(ScaleSignal),
    /// A migrated state unit arriving at its destination.
    Chunk {
        /// The state itself.
        unit: Box<StateUnit>,
        /// Which subscale (or batch) it belongs to.
        subscale: SubscaleId,
        /// The instance it came from.
        from: InstId,
    },
    /// Re-routed records (epoch `Ep`) forwarded by the old instance.
    ReroutedRecords {
        /// Origin (old) instance.
        from: InstId,
        /// The records, in their original per-channel order.
        records: Vec<Record>,
    },
    /// A re-routed confirm barrier (implicit alignment).
    ReroutedConfirm {
        /// Origin (old) instance.
        from: InstId,
        /// The original confirm signal.
        signal: ScaleSignal,
    },
    /// Meces fetch-on-demand request: "send me this state unit".
    Fetch {
        /// Key-group requested.
        kg: KeyGroup,
        /// Sub-group requested.
        sub: u8,
        /// Who wants it.
        requester: InstId,
    },
}

/// Out-of-band control commands (coordinator RPCs, plugin timers).
#[derive(Debug)]
pub enum ControlMsg {
    /// The harness requested a scaling operation (paper: user-request-based
    /// trigger in the Scale Planner).
    StartScale(ScalePlan),
    /// New containers finished initializing (after `deploy_delay`).
    DeployDone {
        /// Scale epoch this deployment belongs to.
        epoch: u32,
    },
    /// A mechanism-defined timer or command; the payload is plugin-private.
    Plugin(u64),
    /// Periodic checkpoint coordinator tick: injects barriers at sources.
    CheckpointTick,
}

/// Every event the simulator can dispatch.
///
/// # Size discipline
///
/// `Ev` is what every scheduler-backend bucket move, heap sift and batch
/// buffer copies, millions of times per run — its size is a hot-path
/// constant. The dominant traffic (`Deliver`, `ProcDone`, `SourceTick`,
/// `Wake`) carries at most 16 bytes inline; the rare, large control-plane
/// payloads (`PriorityMsg` with its boxed state chunks and re-routed
/// record vectors, `ControlMsg` with its embedded `ScalePlan`) are boxed
/// so they can't inflate the enum. `events::ev_fits_in_16_bytes` pins
/// `size_of::<Ev>() <= 16`; use [`Ev::priority`] / [`Ev::control`] to
/// construct the boxed variants.
#[derive(Debug)]
pub enum Ev {
    /// Rate-controlled generation tick for a source instance.
    SourceTick {
        /// The source instance.
        inst: InstId,
    },
    /// An element coming off the wire into the receiver queue. Carries an
    /// arena handle, not the element: the payload stays parked in the
    /// world's `RecordArena`, so the event heap sifts 8-byte handles
    /// instead of ~56-byte stream elements.
    Deliver {
        /// Target channel.
        ch: ChannelId,
        /// Handle of the element in the record arena.
        elem: RecordRef,
        /// Did this element consume a credit when it was put on the wire?
        /// Credited deliveries must decrement `in_flight`; uncredited ones
        /// (priority barriers) bypass credit accounting entirely. The seed
        /// conflated the two with a silent `if in_flight > 0` clamp, which
        /// let uncredited barriers steal credits from in-flight data.
        credited: bool,
    },
    /// An out-of-band message arriving at an instance. Boxed: priority
    /// messages are control-plane-rare and their payloads (state chunks,
    /// re-routed record vectors) are far larger than the hot variants.
    Priority {
        /// Destination instance.
        to: InstId,
        /// The message.
        msg: Box<PriorityMsg>,
    },
    /// An instance finished its current processing quantum.
    ProcDone {
        /// The instance.
        inst: InstId,
        /// Generation guard (stale completions are ignored).
        gen: u64,
    },
    /// A migration link finished serializing+sending its current chunk.
    LinkSendDone {
        /// Sending instance.
        from: InstId,
    },
    /// Control-plane command. Boxed: `StartScale` embeds a whole
    /// `ScalePlan`, and control events are a vanishing fraction of traffic.
    Control(Box<ControlMsg>),
    /// Credits returning to a cut channel's sender region (PDES mode,
    /// `resume_latency > 0`): the receiver popped `n` elements off the cut
    /// channel and, instead of pumping the sender's backlog synchronously,
    /// notifies the sender's region after `resume_latency` — the
    /// latency-bearing resume notice that gives reverse cut edges real
    /// lookahead.
    CutCredit {
        /// The cut channel whose sender gets the credits.
        ch: ChannelId,
        /// Number of credits returned.
        n: u32,
    },
    /// Periodic metric sampling.
    Sample,
    /// Re-examine an instance (generic wake-up; used after unblocking).
    Wake {
        /// The instance to re-examine.
        inst: InstId,
    },
}

impl Ev {
    /// A priority-message event (boxes the message).
    #[inline]
    pub fn priority(to: InstId, msg: PriorityMsg) -> Self {
        Ev::Priority {
            to,
            msg: Box::new(msg),
        }
    }

    /// A control-plane event (boxes the command).
    #[inline]
    pub fn control(cmd: ControlMsg) -> Self {
        Ev::Control(Box::new(cmd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_fits_in_16_bytes() {
        // The scheduler moves `Ev` through every bucket append, heap sift
        // and batch-drain copy; the rare large control payloads are boxed
        // precisely so the enum stays at the size of its hot `Deliver`
        // variant. A regression here is a silent tax on the whole
        // simulator — treat it like a perf bug, not a style nit.
        assert!(
            std::mem::size_of::<Ev>() <= 16,
            "Ev grew to {} bytes — box the offending variant",
            std::mem::size_of::<Ev>()
        );
    }
}
