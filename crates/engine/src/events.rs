//! The simulation event vocabulary.

use crate::ids::{ChannelId, InstId, KeyGroup, SubscaleId};
use crate::record::{Record, RecordRef, ScaleSignal};
use crate::scaling::ScalePlan;
use crate::state::StateUnit;

/// A priority message: delivered directly to the destination instance's
/// handler, bypassing channel queues (Flink priority events). Trigger
/// barriers, state chunks, fetch requests and re-routed items travel this
/// way.
#[derive(Debug)]
pub enum PriorityMsg {
    /// A scaling signal delivered out-of-band (DRRS trigger barriers).
    Signal(ScaleSignal),
    /// A migrated state unit arriving at its destination.
    Chunk {
        /// The state itself.
        unit: Box<StateUnit>,
        /// Which subscale (or batch) it belongs to.
        subscale: SubscaleId,
        /// The instance it came from.
        from: InstId,
    },
    /// Re-routed records (epoch `Ep`) forwarded by the old instance.
    ReroutedRecords {
        /// Origin (old) instance.
        from: InstId,
        /// The records, in their original per-channel order.
        records: Vec<Record>,
    },
    /// A re-routed confirm barrier (implicit alignment).
    ReroutedConfirm {
        /// Origin (old) instance.
        from: InstId,
        /// The original confirm signal.
        signal: ScaleSignal,
    },
    /// Meces fetch-on-demand request: "send me this state unit".
    Fetch {
        /// Key-group requested.
        kg: KeyGroup,
        /// Sub-group requested.
        sub: u8,
        /// Who wants it.
        requester: InstId,
    },
}

/// Out-of-band control commands (coordinator RPCs, plugin timers).
#[derive(Debug)]
pub enum ControlMsg {
    /// The harness requested a scaling operation (paper: user-request-based
    /// trigger in the Scale Planner).
    StartScale(ScalePlan),
    /// New containers finished initializing (after `deploy_delay`).
    DeployDone {
        /// Scale epoch this deployment belongs to.
        epoch: u32,
    },
    /// A mechanism-defined timer or command; the payload is plugin-private.
    Plugin(u64),
    /// Periodic checkpoint coordinator tick: injects barriers at sources.
    CheckpointTick,
}

/// Every event the simulator can dispatch.
#[derive(Debug)]
pub enum Ev {
    /// Rate-controlled generation tick for a source instance.
    SourceTick {
        /// The source instance.
        inst: InstId,
    },
    /// An element coming off the wire into the receiver queue. Carries an
    /// arena handle, not the element: the payload stays parked in the
    /// world's `RecordArena`, so the event heap sifts 8-byte handles
    /// instead of ~56-byte stream elements.
    Deliver {
        /// Target channel.
        ch: ChannelId,
        /// Handle of the element in the record arena.
        elem: RecordRef,
        /// Did this element consume a credit when it was put on the wire?
        /// Credited deliveries must decrement `in_flight`; uncredited ones
        /// (priority barriers) bypass credit accounting entirely. The seed
        /// conflated the two with a silent `if in_flight > 0` clamp, which
        /// let uncredited barriers steal credits from in-flight data.
        credited: bool,
    },
    /// An out-of-band message arriving at an instance.
    Priority {
        /// Destination instance.
        to: InstId,
        /// The message.
        msg: PriorityMsg,
    },
    /// An instance finished its current processing quantum.
    ProcDone {
        /// The instance.
        inst: InstId,
        /// Generation guard (stale completions are ignored).
        gen: u64,
    },
    /// A migration link finished serializing+sending its current chunk.
    LinkSendDone {
        /// Sending instance.
        from: InstId,
    },
    /// Control-plane command.
    Control(ControlMsg),
    /// Periodic metric sampling.
    Sample,
    /// Re-examine an instance (generic wake-up; used after unblocking).
    Wake {
        /// The instance to re-examine.
        inst: InstId,
    },
}
