//! Operator logic: the user-defined functions that run inside instances.
//!
//! The engine gives logic a narrow, state-backend-mediated view of the world
//! (as Flink does), which is what makes state migratable behind its back.

use simcore::SimTime;

use crate::ids::{key_group_of, Key, KeyGroup};
use crate::record::{Record, RecordKind};
use crate::state::{StateBackend, StateValue};
use crate::window::{Agg, PaneSet};

/// What role an operator plays; sources and sinks are engine-managed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpRole {
    /// Rate-controlled generator (engine-managed pending queue = "Kafka").
    Source,
    /// User logic.
    Transform,
    /// Terminal consumer; records latency markers.
    Sink,
}

/// Context handed to operator logic while processing one record.
pub struct OpCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Current operator watermark.
    pub watermark: SimTime,
    /// Key-group of the record being processed.
    pub kg: KeyGroup,
    /// Keyed state backend of this instance.
    pub state: &'a mut StateBackend,
    /// Output collector; emitted records are routed by the engine.
    pub out: &'a mut Vec<Record>,
    /// Key-group count (for re-keying helpers).
    pub max_key_groups: u16,
}

impl OpCtx<'_> {
    /// Emit a data record downstream.
    pub fn emit(&mut self, key: Key, value: i64, event_time: SimTime) {
        self.out.push(Record::data(key, value, event_time));
    }

    /// Key-group of an arbitrary key (for emitted records).
    pub fn kg_of(&self, key: Key) -> KeyGroup {
        key_group_of(key, self.max_key_groups)
    }
}

/// Context for watermark processing (window firing).
pub struct WmCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The new operator watermark.
    pub watermark: SimTime,
    /// Keyed state backend of this instance.
    pub state: &'a mut StateBackend,
    /// Output collector.
    pub out: &'a mut Vec<Record>,
}

/// User logic for a Transform operator. One boxed instance per parallel
/// subtask; keyed state must live in the [`StateBackend`] (so it can
/// migrate), per-subtask scalars may live in `self`.
pub trait OperatorLogic: Send {
    /// Process one data record (multiplicity `rec.count`).
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record);

    /// The operator watermark advanced; fire windows etc.
    fn on_watermark(&mut self, _ctx: &mut WmCtx<'_>) {}

    /// Service time for one record of this shape (multiplied by `count`).
    fn service_time(&self, rec: &Record) -> SimTime;

    /// Busy time charged per watermark advance (window firing cost).
    fn watermark_cost(&self) -> SimTime {
        0
    }
}

// ---------------------------------------------------------------------------
// Stock operators
// ---------------------------------------------------------------------------

/// Stateless pass-through with a fixed per-record cost (parse/filter stages).
pub struct Relay {
    /// Per-record service time.
    pub service: SimTime,
}

impl OperatorLogic for Relay {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let mut r = rec.clone();
        r.origin = (crate::ids::InstId(u32::MAX), 0); // re-stamped at emission
        ctx.out.push(r);
    }
    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
}

/// Stateless re-key: the emitted key becomes the record's `value` field
/// (workloads use this, e.g. user→channel in the Twitch pipeline).
pub struct ReKeyByValue {
    /// Per-record service time.
    pub service: SimTime,
}

impl OperatorLogic for ReKeyByValue {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let mut r = rec.clone();
        r.key = rec.value.unsigned_abs();
        r.origin = (crate::ids::InstId(u32::MAX), 0);
        ctx.out.push(r);
    }
    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
}

/// Keyed running aggregate (count + sum); emits the running sum per record.
///
/// This is the scaling operator of the paper's custom 3-operator workload:
/// its state size is controlled via `bytes_per_key` and the key universe.
pub struct KeyedAgg {
    /// Per-record service time.
    pub service: SimTime,
    /// Nominal state bytes added when a key is first seen.
    pub bytes_per_key: u64,
    /// Nominal state bytes added per record (0 = plateau at keys*bytes_per_key).
    pub bytes_per_record: u64,
    /// Emit one output per this many input records (1 = every record).
    pub emit_every: u32,
}

/// Keyed stateful stage that passes records through unchanged while
/// accumulating per-key state (session/engagement stages of the Twitch
/// pipeline, where downstream operators still need the original value).
pub struct KeyedTouch {
    /// Per-record service time.
    pub service: SimTime,
    /// Nominal state bytes added when a key is first seen.
    pub bytes_per_key: u64,
    /// Nominal state bytes added per record.
    pub bytes_per_record: u64,
}

impl OperatorLogic for KeyedTouch {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let fresh = {
            let v = ctx.state.entry_or(ctx.kg, rec.key, || StateValue::Count(0));
            let fresh = matches!(v, StateValue::Count(0));
            if let StateValue::Count(c) = v {
                *c += rec.count as u64;
            }
            fresh
        };
        if fresh && self.bytes_per_key > 0 {
            ctx.state
                .add_bytes(ctx.kg, rec.key, self.bytes_per_key as i64);
        }
        if self.bytes_per_record > 0 {
            ctx.state.add_bytes(
                ctx.kg,
                rec.key,
                (self.bytes_per_record * rec.count as u64) as i64,
            );
        }
        let mut r = rec.clone();
        r.origin = (crate::ids::InstId(u32::MAX), 0);
        ctx.out.push(r);
    }
    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
}

impl OperatorLogic for KeyedAgg {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let fresh = {
            let v = ctx
                .state
                .entry_or(ctx.kg, rec.key, || StateValue::Sum { count: 0, sum: 0 });
            let fresh = matches!(v, StateValue::Sum { count: 0, .. });
            if let StateValue::Sum { count, sum } = v {
                *count += rec.count as u64;
                *sum += rec.value * rec.count as i64;
            }
            fresh
        };
        if fresh {
            ctx.state
                .add_bytes(ctx.kg, rec.key, self.bytes_per_key as i64);
        }
        if self.bytes_per_record > 0 {
            ctx.state.add_bytes(
                ctx.kg,
                rec.key,
                (self.bytes_per_record * rec.count as u64) as i64,
            );
        }
        if self.emit_every <= 1 || rec.origin.1.is_multiple_of(self.emit_every as u64) {
            let sum = match ctx
                .state
                .entry_or(ctx.kg, rec.key, || StateValue::Sum { count: 0, sum: 0 })
            {
                StateValue::Sum { sum, .. } => *sum,
                _ => 0,
            };
            ctx.emit(rec.key, sum, rec.event_time);
        }
    }
    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
}

/// Keyed sliding-window aggregate (the scaling operator of NEXMark Q7 and
/// the Twitch loyalty stage).
pub struct WindowAgg {
    /// Window size (event time).
    pub size: SimTime,
    /// Slide interval.
    pub slide: SimTime,
    /// Aggregation function.
    pub agg: Agg,
    /// Per-record service time.
    pub service: SimTime,
    /// Nominal state bytes per buffered record.
    pub bytes_per_record: u64,
    /// Per-watermark firing cost.
    pub fire_cost: SimTime,
    /// Last fired window end (per subtask).
    pub last_fired: SimTime,
}

impl WindowAgg {
    /// Standard construction with `last_fired` starting at zero.
    pub fn new(
        size: SimTime,
        slide: SimTime,
        agg: Agg,
        service: SimTime,
        bytes_per_record: u64,
    ) -> Self {
        Self {
            size,
            slide,
            agg,
            service,
            bytes_per_record,
            fire_cost: service * 4,
            last_fired: 0,
        }
    }
}

impl OperatorLogic for WindowAgg {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let (slide, agg) = (self.slide, self.agg);
        let v = ctx
            .state
            .entry_or(ctx.kg, rec.key, || StateValue::Panes(PaneSet::default()));
        if let StateValue::Panes(p) = v {
            p.add(rec.event_time, rec.value, rec.count as u64, slide, agg);
        }
        ctx.state.add_bytes(
            ctx.kg,
            rec.key,
            (self.bytes_per_record * rec.count as u64) as i64,
        );
    }

    fn on_watermark(&mut self, ctx: &mut WmCtx<'_>) {
        // Fire every window whose end has passed the watermark.
        let mut ends = Vec::new();
        let mut end = ((self.last_fired / self.slide) + 1) * self.slide;
        while end <= ctx.watermark {
            ends.push(end);
            self.last_fired = end;
            end += self.slide;
        }
        let Some(&last_end) = ends.last() else { return };
        let (size, agg, bpr) = (self.size, self.agg, self.bytes_per_record);
        let horizon = last_end.saturating_sub(size);
        let mut emits: Vec<(Key, i64, SimTime)> = Vec::new();
        let mut freed: Vec<(Key, u64)> = Vec::new();
        ctx.state.for_each_entry_mut(|key, v| {
            if let StateValue::Panes(p) = v {
                for &e in &ends {
                    if let Some((val, _n)) = p.window_agg(e, size, agg) {
                        emits.push((key, val, e));
                    }
                }
                let evicted = p.evict_before(horizon);
                if evicted > 0 {
                    freed.push((key, evicted));
                }
            }
        });
        for (key, evicted) in freed {
            ctx.state.add_bytes_for(key, -((evicted * bpr) as i64));
        }
        for (key, val, e) in emits {
            ctx.out.push(Record::data(key, val, e));
        }
    }

    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
    fn watermark_cost(&self) -> SimTime {
        self.fire_cost
    }
}

/// Keyed windowed join for NEXMark Q8: side A records carry `value >= 0`
/// (persons), side B `value < 0` (auctions by that person). Emits a record
/// when an auction finds its person within the window.
pub struct WindowJoin {
    /// Window size (event time).
    pub size: SimTime,
    /// Per-record service time.
    pub service: SimTime,
    /// Nominal state bytes per buffered element.
    pub bytes_per_record: u64,
}

impl OperatorLogic for WindowJoin {
    fn on_record(&mut self, ctx: &mut OpCtx<'_>, rec: &Record) {
        let lo = rec.event_time.saturating_sub(self.size);
        let mut emit = None;
        {
            let v = ctx.state.entry_or(ctx.kg, rec.key, || {
                StateValue::Lists(Vec::new(), Vec::new())
            });
            if let StateValue::Lists(persons, auctions) = v {
                if rec.value >= 0 {
                    persons.push(rec.event_time as i64);
                } else {
                    auctions.push(rec.event_time as i64);
                    // New-person join: person created within the window.
                    if persons.iter().any(|&t| t as SimTime >= lo) {
                        emit = Some((rec.key, rec.event_time));
                    }
                }
            }
        }
        ctx.state.add_bytes(
            ctx.kg,
            rec.key,
            (self.bytes_per_record * rec.count as u64) as i64,
        );
        if let Some((k, et)) = emit {
            ctx.emit(k, 1, et);
        }
    }

    fn on_watermark(&mut self, ctx: &mut WmCtx<'_>) {
        // Trim both sides to the window horizon.
        let horizon = ctx.watermark.saturating_sub(self.size) as i64;
        let bpr = self.bytes_per_record;
        let mut freed: Vec<(Key, u64)> = Vec::new();
        ctx.state.for_each_entry_mut(|key, v| {
            if let StateValue::Lists(a, b) = v {
                let before = (a.len() + b.len()) as u64;
                a.retain(|&t| t >= horizon);
                b.retain(|&t| t >= horizon);
                let after = (a.len() + b.len()) as u64;
                if before > after {
                    freed.push((key, before - after));
                }
            }
        });
        for (key, n) in freed {
            ctx.state.add_bytes_for(key, -((n * bpr) as i64));
        }
    }

    fn service_time(&self, _rec: &Record) -> SimTime {
        self.service
    }
    fn watermark_cost(&self) -> SimTime {
        self.service * 2
    }
}

/// Is this record a latency marker (engine fast-path check)?
pub fn is_marker(rec: &Record) -> bool {
    rec.kind == RecordKind::Marker
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InstId;

    fn ctx_parts(kgs: u16) -> (StateBackend, Vec<Record>) {
        let mut b = StateBackend::new(kgs, 1);
        for g in 0..kgs {
            b.ensure_group(KeyGroup(g));
        }
        (b, Vec::new())
    }

    fn run_record(
        logic: &mut dyn OperatorLogic,
        state: &mut StateBackend,
        out: &mut Vec<Record>,
        rec: Record,
    ) {
        let kg = key_group_of(rec.key, 16);
        let mut ctx = OpCtx {
            now: rec.event_time,
            watermark: 0,
            kg,
            state,
            out,
            max_key_groups: 16,
        };
        logic.on_record(&mut ctx, &rec);
    }

    #[test]
    fn relay_passes_through() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = Relay { service: 10 };
        run_record(&mut op, &mut st, &mut out, Record::data(5, 99, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, 5);
        assert_eq!(out[0].value, 99);
    }

    #[test]
    fn rekey_by_value() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = ReKeyByValue { service: 10 };
        run_record(&mut op, &mut st, &mut out, Record::data(5, 42, 1));
        assert_eq!(out[0].key, 42);
    }

    #[test]
    fn keyed_agg_accumulates_and_tracks_bytes() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = KeyedAgg {
            service: 10,
            bytes_per_key: 1000,
            bytes_per_record: 10,
            emit_every: 1,
        };
        let mut r = Record::data(8, 3, 1);
        r.origin = (InstId(0), 0);
        run_record(&mut op, &mut st, &mut out, r.clone());
        r.origin.1 = 1;
        run_record(&mut op, &mut st, &mut out, r);
        assert_eq!(st.snapshot_counts()[&8], 2);
        // 1000 on first sight + 10 per record.
        assert_eq!(st.total_bytes(), 1020);
        assert_eq!(out.last().map(|r| r.value), Some(6));
    }

    #[test]
    fn window_agg_fires_on_watermark() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = WindowAgg::new(100, 50, Agg::Max, 5, 100);
        run_record(&mut op, &mut st, &mut out, Record::data(1, 7, 10));
        run_record(&mut op, &mut st, &mut out, Record::data(1, 12, 60));
        assert!(out.is_empty());
        let mut wm = WmCtx {
            now: 200,
            watermark: 100,
            state: &mut st,
            out: &mut out,
        };
        op.on_watermark(&mut wm);
        // Windows ending at 50 and 100 fire; the 100-end window sees both.
        assert!(out.iter().any(|r| r.value == 12), "{out:?}");
        assert!(out.iter().any(|r| r.value == 7));
    }

    #[test]
    fn window_agg_evicts_and_frees_bytes() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = WindowAgg::new(100, 50, Agg::Sum, 5, 64);
        run_record(&mut op, &mut st, &mut out, Record::data(2, 1, 10));
        assert_eq!(st.total_bytes(), 64);
        let mut wm = WmCtx {
            now: 500,
            watermark: 400,
            state: &mut st,
            out: &mut out,
        };
        op.on_watermark(&mut wm);
        assert_eq!(st.total_bytes(), 0, "evicted pane should free bytes");
    }

    #[test]
    fn join_emits_on_matching_auction() {
        let (mut st, mut out) = ctx_parts(16);
        let mut op = WindowJoin {
            size: 100,
            service: 5,
            bytes_per_record: 32,
        };
        run_record(&mut op, &mut st, &mut out, Record::data(3, 1, 10)); // person
        run_record(&mut op, &mut st, &mut out, Record::data(3, -1, 50)); // auction
        assert_eq!(out.len(), 1);
        // Auction outside window does not match.
        out.clear();
        run_record(&mut op, &mut st, &mut out, Record::data(3, -1, 500));
        assert!(out.is_empty());
    }
}
