//! Operator-graph partitioning for region-parallel scheduling.
//!
//! [`RegionMap`] assigns every operator (and therefore every instance —
//! instances inherit their operator's region, including instances created
//! later by scale-out) to one of `k` scheduler regions, and derives the
//! conservative lookahead matrix the region scheduler's
//! Chandy–Misra–Bryant accounting runs on (see `simcore::region`).
//!
//! # Partitioning
//!
//! The cut is chosen over the *operator* graph, not per instance: all
//! instances of one operator share a scheduler region, so an operator's
//! internal events (`ProcDone`, `Wake`, source ticks) never cross regions
//! and the only cut traffic is edge traffic the dense [`EdgeRt`] matrix
//! can enumerate. The algorithm is deterministic (same graph → same cut):
//!
//! 1. Split the graph into weakly-connected components. Disjoint
//!    pipelines are the best possible cut — no edge crosses, lookahead is
//!    infinite — so components are never split while whole ones can be
//!    balanced across regions instead.
//! 2. If there are fewer components than regions, repeatedly split the
//!    heaviest (most instances) splittable group by a **topological
//!    prefix min-cut**: among all prefix/suffix splits of the group's
//!    topo order, pick the one crossing the fewest channels (edge weight
//!    = wired channel count), tie-broken toward instance balance. A DAG
//!    edge always points forward in topo order, so a prefix split cuts
//!    only forward edges and the familiar sources-upstream /
//!    sinks-downstream K=2 cut falls out naturally.
//! 3. Groups become regions in topo order of their earliest operator, so
//!    region 0 is always the most upstream — control events
//!    (`Ev::Sample`, `Ev::Control`) are pinned there by the world.
//!
//! # Lookahead
//!
//! `lookahead[a * k + b]` is the minimum delay of any event a region-`a`
//! handler can schedule into region `b`:
//!
//! * a cut data channel `a → b` contributes its wire latency (a `Deliver`
//!   is scheduled `c.latency` ahead),
//! * priority messages ride existing edge directions at `ctrl_latency`
//!   (migration chunks and fetches stay inside the scaled operator's own
//!   region; rerouted-record and confirm traffic follows predecessor
//!   edges), so any edge `a → b` also caps the entry at `ctrl_latency`,
//! * a cut channel `a → b` bounds the **reverse** entry `b → a` by the
//!   engine's `resume_latency`: at 0 (the default) the receiver's `pump`
//!   wakes a backpressure-blocked sender with a zero-delay `Ev::Wake` —
//!   the zero-lookahead feedback loop that forces the merged-exact
//!   scheduler design (see `simcore::region`). At `resume_latency > 0`
//!   credit returns cross the cut as latency-bearing `CutCredit` events,
//!   the reverse edge gains that much lookahead, and thread-per-region
//!   execution (`engine::parallel`) becomes possible.
//!
//! Pairs with no connecting edge keep `SimTime::MAX` — fully independent
//! pipelines never constrain each other.

use simcore::SimTime;

use crate::channel::Channel;
use crate::graph::{EdgeRt, OperatorRt};
use crate::ids::{InstId, OpId};
use crate::instance::Instance;

/// The operator → region assignment plus the derived lookahead matrix.
#[derive(Clone, Debug)]
pub struct RegionMap {
    k: usize,
    /// Region of each operator, indexed by `OpId`.
    op_region: Vec<u8>,
    /// Region of each instance, indexed by `InstId` (instances inherit
    /// their operator's region; extended on scale-out).
    inst_region: Vec<u8>,
    /// Row-major `k × k` lookahead matrix (see module docs).
    lookahead: Vec<SimTime>,
    /// Number of wired channels whose endpoints sit in different regions.
    cut_channels: usize,
}

impl RegionMap {
    /// The trivial single-region map (the sequential engine).
    pub fn single(n_ops: usize, n_insts: usize) -> Self {
        Self {
            k: 1,
            op_region: vec![0; n_ops],
            inst_region: vec![0; n_insts],
            lookahead: vec![0],
            cut_channels: 0,
        }
    }

    /// Partition the operator graph into (at most) `k` regions and derive
    /// the lookahead matrix. `k` is clamped to the operator count; `k <= 1`
    /// yields [`Self::single`].
    pub fn compute(
        k: usize,
        ops: &[OperatorRt],
        edges: &[EdgeRt],
        chans: &[Channel],
        n_insts: usize,
        ctrl_latency: SimTime,
        resume_latency: SimTime,
    ) -> Self {
        let k = k.min(ops.len()).max(1);
        if k == 1 {
            return Self::single(ops.len(), n_insts);
        }

        let topo = topo_order(ops, edges);
        let groups = partition(k, ops, edges, &topo);
        let k = groups.len(); // may come out below the request

        // Order groups by their most-upstream operator so region ids are
        // stable and region 0 holds the earliest topo position.
        let mut pos_of_op = vec![0usize; ops.len()];
        for (p, &op) in topo.iter().enumerate() {
            pos_of_op[op.0 as usize] = p;
        }
        let mut ordered: Vec<Vec<OpId>> = groups;
        ordered.sort_by_key(|g| g.iter().map(|o| pos_of_op[o.0 as usize]).min());

        let mut op_region = vec![0u8; ops.len()];
        for (r, g) in ordered.iter().enumerate() {
            for &op in g {
                op_region[op.0 as usize] = r as u8;
            }
        }
        let mut inst_region = vec![0u8; n_insts];
        for op in ops {
            for &i in &op.instances {
                inst_region[i.0 as usize] = op_region[op.id.0 as usize];
            }
        }

        let mut map = Self {
            k,
            op_region,
            inst_region,
            lookahead: Vec::new(),
            cut_channels: 0,
        };
        map.rebuild_lookahead(edges, chans, ctrl_latency, resume_latency);
        map
    }

    /// Recompute the lookahead matrix and cut-channel count from the
    /// current channel set (build time, and again after scale-out wires
    /// new channels — new channels between already-connected region pairs
    /// cannot loosen the matrix, but this keeps the cut count honest).
    pub fn rebuild_lookahead(
        &mut self,
        edges: &[EdgeRt],
        chans: &[Channel],
        ctrl_latency: SimTime,
        resume_latency: SimTime,
    ) {
        let k = self.k;
        let mut la = vec![SimTime::MAX; k * k];
        for r in 0..k {
            la[r * k + r] = 0;
        }
        // Priority traffic follows edge directions (module docs).
        for e in edges {
            let (a, b) = (self.op(e.from), self.op(e.to));
            if a != b {
                la[a * k + b] = la[a * k + b].min(ctrl_latency);
            }
        }
        let mut cut = 0usize;
        for c in chans {
            let (a, b) = (self.inst(c.from), self.inst(c.to));
            if a != b {
                cut += 1;
                la[a * k + b] = la[a * k + b].min(c.latency);
                // Reverse edge: at resume_latency 0, pump() wakes a
                // blocked sender at delay 0; at > 0 the credit-return
                // CutCredit is the earliest reverse event.
                la[b * k + a] = la[b * k + a].min(resume_latency);
            }
        }
        self.lookahead = la;
        self.cut_channels = cut;
    }

    /// Extend the instance assignment after scale-out: every instance
    /// beyond the already-mapped prefix inherits its operator's region.
    pub fn extend_for_new_instances(&mut self, insts: &[Instance]) {
        for inst in &insts[self.inst_region.len()..] {
            let r = self.op_region[inst.op.0 as usize];
            self.inst_region.push(r);
        }
    }

    /// Number of regions.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Region of an operator.
    #[inline]
    pub fn op(&self, op: OpId) -> usize {
        self.op_region[op.0 as usize] as usize
    }

    /// Region of an instance.
    #[inline]
    pub fn inst(&self, inst: InstId) -> usize {
        self.inst_region[inst.0 as usize] as usize
    }

    /// The row-major `k × k` lookahead matrix.
    pub fn lookahead(&self) -> &[SimTime] {
        &self.lookahead
    }

    /// Wired channels crossing a region boundary.
    pub fn cut_channels(&self) -> usize {
        self.cut_channels
    }
}

/// Deterministic topological order of the operator DAG (Kahn's algorithm,
/// ready set kept in ascending `OpId` order).
fn topo_order(ops: &[OperatorRt], edges: &[EdgeRt]) -> Vec<OpId> {
    let mut indeg = vec![0usize; ops.len()];
    for e in edges {
        indeg[e.to.0 as usize] += 1;
    }
    let mut ready: Vec<OpId> = ops
        .iter()
        .filter(|o| indeg[o.id.0 as usize] == 0)
        .map(|o| o.id)
        .collect();
    let mut out = Vec::with_capacity(ops.len());
    while !ready.is_empty() {
        // Smallest OpId first: determinism without a heap.
        let (pos, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.0)
            .expect("non-empty");
        let op = ready.swap_remove(pos);
        out.push(op);
        for e in edges.iter().filter(|e| e.from == op) {
            indeg[e.to.0 as usize] -= 1;
            if indeg[e.to.0 as usize] == 0 {
                ready.push(e.to);
            }
        }
    }
    debug_assert_eq!(out.len(), ops.len(), "operator graph has a cycle");
    out
}

/// Instance count of an operator group.
fn group_weight(g: &[OpId], ops: &[OperatorRt]) -> usize {
    g.iter().map(|&o| ops[o.0 as usize].instances.len()).sum()
}

/// Edge weight: how many channels a cut of this edge severs.
fn edge_weight(e: &EdgeRt, ops: &[OperatorRt]) -> usize {
    ops[e.from.0 as usize].instances.len() * ops[e.to.0 as usize].instances.len()
}

/// Partition operators into at most `k` groups (see module docs). Returns
/// between 1 and `k` non-empty groups.
fn partition(k: usize, ops: &[OperatorRt], edges: &[EdgeRt], topo: &[OpId]) -> Vec<Vec<OpId>> {
    // Weakly-connected components, discovered in ascending-OpId order.
    let mut comp = vec![usize::MAX; ops.len()];
    let mut n_comps = 0usize;
    for start in 0..ops.len() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = n_comps;
        n_comps += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(o) = stack.pop() {
            for e in edges {
                let (f, t) = (e.from.0 as usize, e.to.0 as usize);
                for n in [(f == o).then_some(t), (t == o).then_some(f)]
                    .into_iter()
                    .flatten()
                {
                    if comp[n] == usize::MAX {
                        comp[n] = id;
                        stack.push(n);
                    }
                }
            }
        }
    }
    let mut groups: Vec<Vec<OpId>> = vec![Vec::new(); n_comps];
    // Keep each group's ops in topo order — prefix splits depend on it.
    for &op in topo {
        groups[comp[op.0 as usize]].push(op);
    }

    if groups.len() >= k {
        // More components than regions: bin-pack whole components into k
        // groups, heaviest first, always into the lightest bin.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| (usize::MAX - group_weight(&groups[g], ops), g));
        let mut bins: Vec<Vec<OpId>> = vec![Vec::new(); k];
        for g in order {
            let lightest = (0..k)
                .min_by_key(|&b| (group_weight(&bins[b], ops), b))
                .expect("k >= 1");
            bins[lightest].extend(groups[g].iter().copied());
        }
        bins.retain(|b| !b.is_empty());
        return bins;
    }

    // Fewer components than regions: split the heaviest splittable group
    // by topo-prefix min-cut until we have k groups (or nothing splits).
    while groups.len() < k {
        let Some(gi) = (0..groups.len())
            .filter(|&g| groups[g].len() > 1)
            .max_by_key(|&g| (group_weight(&groups[g], ops), usize::MAX - g))
        else {
            break;
        };
        let g = &groups[gi];
        let in_group = |op: OpId| g.contains(&op);
        let total_w = group_weight(g, ops);
        // Evaluate every prefix split; a DAG edge inside the group always
        // runs forward in topo order, so only prefix → suffix edges cut.
        let mut best: Option<(usize, usize, usize)> = None; // (cut, imbalance, i)
        for i in 1..g.len() {
            let prefix = &g[..i];
            let cut: usize = edges
                .iter()
                .filter(|e| {
                    in_group(e.from)
                        && in_group(e.to)
                        && prefix.contains(&e.from)
                        && !prefix.contains(&e.to)
                })
                .map(|e| edge_weight(e, ops))
                .sum();
            let pw = group_weight(prefix, ops);
            let imbalance = pw.abs_diff(total_w - pw);
            let cand = (cut, imbalance, i);
            if best.map(|b| cand < b).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let (_, _, i) = best.expect("group has > 1 op");
        let suffix = groups[gi].split_off(i);
        groups.push(suffix);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::graph::{EdgeKind, JobBuilder};
    use crate::operator::Relay;
    use crate::world::tests_support::FixedGen;

    fn pipeline_world(par: usize) -> crate::world::World {
        let mut b = JobBuilder::new(EngineConfig::test());
        let src = b.source("src", 1, Box::new(|_| Box::new(FixedGen::new(100.0, 8))));
        let map = b.operator("map", par, Box::new(|| Box::new(Relay { service: 10 })));
        let sink = b.sink("sink", 1);
        b.connect(src, map, EdgeKind::Keyed);
        b.connect(map, sink, EdgeKind::Rebalance);
        b.build()
    }

    #[test]
    fn single_map_is_all_region_zero() {
        let w = pipeline_world(2);
        let m = RegionMap::compute(1, &w.ops, &w.edges, &w.chans, w.insts.len(), 50, 0);
        assert_eq!(m.k(), 1);
        assert!(w.insts.iter().all(|i| m.inst(i.id) == 0));
        assert_eq!(m.cut_channels(), 0);
    }

    #[test]
    fn pipeline_splits_at_the_narrowest_edge() {
        // src(1) → map(4) → sink(1): cutting src→map severs 4 channels,
        // cutting map→sink severs 4 too, but balance prefers the middle...
        // with par=4 both cuts weigh 4; the src|rest split is less balanced
        // (1 vs 5) than src+map|sink (5 vs 1)? Equal — the earlier split
        // index wins the tie deterministically.
        let w = pipeline_world(4);
        let m = RegionMap::compute(2, &w.ops, &w.edges, &w.chans, w.insts.len(), 50, 0);
        assert_eq!(m.k(), 2);
        // All instances of one operator share a region.
        for op in &w.ops {
            let r = m.op(op.id);
            for &i in &op.instances {
                assert_eq!(m.inst(i), r);
            }
        }
        // Exactly one edge is cut (4 channels), and region 0 is upstream.
        assert_eq!(m.cut_channels(), 4);
        assert_eq!(m.op(w.ops[0].id), 0, "source is most upstream");
    }

    #[test]
    fn lookahead_matrix_has_forward_latency_and_zero_reverse() {
        let w = pipeline_world(2);
        let m = RegionMap::compute(2, &w.ops, &w.edges, &w.chans, w.insts.len(), 50, 0);
        let k = m.k();
        let la = m.lookahead();
        // Find the cut pair (a upstream of b).
        let mut seen_cut = false;
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    assert_eq!(la[a * k + b], 0);
                    continue;
                }
                if la[a * k + b] != SimTime::MAX && la[a * k + b] > 0 {
                    // Forward: capped by ctrl_latency (50 < net 200).
                    assert_eq!(la[a * k + b], 50);
                    // Reverse: the zero-delay wake path.
                    assert_eq!(la[b * k + a], 0);
                    seen_cut = true;
                }
            }
        }
        assert!(seen_cut, "a 2-region pipeline must have a cut pair");
    }

    #[test]
    fn disjoint_pipelines_land_in_disjoint_regions_with_infinite_lookahead() {
        let mut b = JobBuilder::new(EngineConfig::test());
        for p in 0..2 {
            let src = b.source(
                &format!("src{p}"),
                1,
                Box::new(|_| Box::new(FixedGen::new(100.0, 8))),
            );
            let map = b.operator(
                &format!("map{p}"),
                2,
                Box::new(|| Box::new(Relay { service: 10 })),
            );
            let sink = b.sink(&format!("sink{p}"), 1);
            b.connect(src, map, EdgeKind::Keyed);
            b.connect(map, sink, EdgeKind::Rebalance);
        }
        let w = b.build();
        let m = RegionMap::compute(2, &w.ops, &w.edges, &w.chans, w.insts.len(), 50, 0);
        assert_eq!(m.k(), 2);
        assert_eq!(m.cut_channels(), 0, "components must never be split");
        let la = m.lookahead();
        assert_eq!(la[1], SimTime::MAX);
        assert_eq!(la[2], SimTime::MAX);
        // Each pipeline's three ops share one region.
        for p in 0..2 {
            let r = m.op(w.ops[3 * p].id);
            assert_eq!(m.op(w.ops[3 * p + 1].id), r);
            assert_eq!(m.op(w.ops[3 * p + 2].id), r);
        }
        assert_ne!(m.op(w.ops[0].id), m.op(w.ops[3].id));
    }

    #[test]
    fn k_clamps_to_operator_count() {
        let w = pipeline_world(2);
        let m = RegionMap::compute(64, &w.ops, &w.edges, &w.chans, w.insts.len(), 50, 0);
        assert!(m.k() <= 3, "three ops cannot make more than three regions");
        assert!(m.k() >= 2);
    }
}
