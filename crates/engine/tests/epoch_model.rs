//! Model-checked miniature of the `streamflow::parallel` epoch loop.
//!
//! Runs only under `--features interleave-check`. The real `drive()` loop
//! cannot run under the explorer directly (each worker replicates a full
//! simulation; the model caps thread count and step budget), so this test
//! re-builds the loop's *synchronization skeleton* — drain rings → publish
//! clock → barrier → compute dispatch cap from the lookahead closure
//! (including the `L[r][r]` self-cycle term) → dispatch → ship over rings
//! with the mutex overflow path → barrier — using the very same
//! primitives (`simcore::spsc::ring`, `EpochBarrier`, facade atomics) and
//! checks the conservative-PDES invariants across thousands of explored
//! interleavings:
//!
//! * **No time-goes-backwards delivery**: a drained message's arrival
//!   time is strictly after every event its receiver has dispatched.
//! * **Exactly-once, unreordered dispatch**: each region's final dispatch
//!   sequence equals the sequential reference exactly — a lost,
//!   duplicated or reordered ring element cannot produce it.
//! * **No deadlock / livelock** across the two barriers (the explorer
//!   reports either as a violation).
#![cfg(feature = "interleave-check")]

use std::sync::{Arc, Mutex};

use interleave::{thread, Checker};
use simcore::spsc::{ring, Consumer, EpochBarrier, Producer};
use simcore::sync::{AtomicU64, Ordering};

const K: usize = 2;
const HORIZON: u64 = 100;
/// Direct lookahead, row-major: L[0→1] = L[1→0] = 10.
const DIRECT: u64 = 10;
/// Closure diagonal: the shortest cycle 0→1→0 (= 20) paces a region
/// against its own echo, exactly as `parallel::lookahead_closure`
/// computes it.
const CYCLE: u64 = 2 * DIRECT;
const IDLE: u64 = u64::MAX;

/// Full 2×2 transitive closure of the lookahead matrix.
fn l(s: usize, r: usize) -> u64 {
    if s == r {
        CYCLE
    } else {
        DIRECT
    }
}

struct Inbox {
    cons: Consumer<u64>,
    overflow: Arc<Mutex<Vec<u64>>>,
}

struct Outbox {
    prod: Producer<u64>,
    overflow: Arc<Mutex<Vec<u64>>>,
}

/// One region's worker: `seeds` are its initial (source) events; each
/// dispatched source sends one message to the peer arriving `DIRECT`
/// later; delivered messages are plain events (no re-echo, so the run
/// terminates). Returns the dispatch sequence in order.
#[allow(clippy::too_many_arguments)]
fn worker(
    r: usize,
    seeds: &[u64],
    mut inbox: Inbox,
    mut outbox: Outbox,
    next: Arc<[AtomicU64; K]>,
    barrier_a: Arc<EpochBarrier>,
    barrier_b: Arc<EpochBarrier>,
) -> Vec<u64> {
    let mut pending: Vec<u64> = seeds.to_vec();
    pending.sort_unstable();
    // (time, sends) pairs: seeds send, deliveries don't.
    let mut pending: Vec<(u64, bool)> = pending.into_iter().map(|t| (t, true)).collect();
    let mut dispatched: Vec<u64> = Vec::new();
    loop {
        // 1. Drain inbound traffic (quiescent: everything visible was
        // shipped before the previous epoch's closing barrier).
        let mut arrivals: Vec<u64> = Vec::new();
        while let Some(a) = inbox.cons.pop() {
            arrivals.push(a);
        }
        arrivals.extend(inbox.overflow.lock().expect("overflow").drain(..));
        for a in arrivals {
            // Conservative-PDES core invariant: no delivery into the
            // receiver's past.
            if let Some(&last) = dispatched.last() {
                assert!(
                    a > last,
                    "region {r}: message for t={a} arrived after t={last} was dispatched"
                );
            }
            pending.push((a, false));
        }
        pending.sort_unstable();
        // 2. Publish this region's clock, then synchronize.
        let head = pending.first().map_or(IDLE, |&(t, _)| t);
        next[r].store(head, Ordering::SeqCst);
        barrier_a.wait();
        let mut m = IDLE;
        for s in next.iter() {
            m = m.min(s.load(Ordering::SeqCst));
        }
        // 3. Dispatch to the cap. Every `s` participates, including
        // `s == r` through the closure's self-cycle entry.
        if m <= HORIZON {
            let mut cap = HORIZON;
            for s in 0..K {
                let ns = next[s].load(Ordering::SeqCst);
                cap = cap.min(ns.saturating_add(l(s, r)).saturating_sub(1));
            }
            while pending.first().is_some_and(|&(t, _)| t <= cap) {
                let (t, sends) = pending.remove(0);
                dispatched.push(t);
                if sends {
                    // Ship to the peer; a full ring spills into the
                    // overflow vector, exactly like the real loop.
                    if outbox.prod.push(t + DIRECT).is_err() {
                        outbox.overflow.lock().expect("overflow").push(t + DIRECT);
                    }
                }
            }
        }
        barrier_b.wait();
        if m > HORIZON {
            // Same m on every worker: the cohort breaks together.
            return dispatched;
        }
    }
}

fn epoch_model(seeds0: &'static [u64], seeds1: &'static [u64]) -> interleave::Report {
    Checker::new()
        .dfs_schedules(1024)
        .random_schedules(512)
        .preemption_bound(2)
        .run(move || {
            // k·(k−1) = 2 directed rings; tiny capacity so the overflow
            // path is part of the modelled state space.
            let (p01, c01) = ring::<u64>(2);
            let (p10, c10) = ring::<u64>(2);
            let ov0 = Arc::new(Mutex::new(Vec::new()));
            let ov1 = Arc::new(Mutex::new(Vec::new()));
            let next: Arc<[AtomicU64; K]> = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
            let barrier_a = Arc::new(EpochBarrier::new(K));
            let barrier_b = Arc::new(EpochBarrier::new(K));

            let (n2, ba2, bb2) = (
                Arc::clone(&next),
                Arc::clone(&barrier_a),
                Arc::clone(&barrier_b),
            );
            let in1 = Inbox {
                cons: c01,
                overflow: Arc::clone(&ov1),
            };
            let out1 = Outbox {
                prod: p10,
                overflow: Arc::clone(&ov0),
            };
            let peer = thread::spawn(move || worker(1, seeds1, in1, out1, n2, ba2, bb2));

            let in0 = Inbox {
                cons: c10,
                overflow: Arc::clone(&ov0),
            };
            let out0 = Outbox {
                prod: p01,
                overflow: Arc::clone(&ov1),
            };
            let d0 = worker(0, seeds0, in0, out0, next, barrier_a, barrier_b);
            let d1 = peer.join().unwrap();

            // Sequential reference: seeds in order, plus exactly one
            // delivery per peer seed at t+DIRECT ≤ HORIZON. Equality
            // means every message arrived exactly once and every event
            // dispatched in timestamp order on its region.
            let expect = |mine: &[u64], theirs: &[u64]| -> Vec<u64> {
                let mut v: Vec<u64> = mine
                    .iter()
                    .copied()
                    .chain(theirs.iter().map(|&t| t + DIRECT))
                    .filter(|&t| t <= HORIZON)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(d0, expect(seeds0, seeds1), "region 0 dispatch sequence");
            assert_eq!(d1, expect(seeds1, seeds0), "region 1 dispatch sequence");
        })
}

#[test]
fn epoch_loop_delivers_exactly_once_in_order() {
    let report = epoch_model(&[5, 30], &[7, 25]);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.dfs_complete || report.distinct >= 1000,
        "only {} distinct schedules explored and DFS incomplete",
        report.distinct
    );
}

#[test]
fn epoch_loop_survives_idle_and_boundary_regions() {
    // Region 1 starts empty (publishes IDLE until deliveries arrive) and
    // region 0's second seed sits exactly on the horizon — exercising the
    // all-idle epochs and the cap-clipping edge.
    let report = epoch_model(&[5, HORIZON], &[]);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.dfs_complete || report.distinct >= 500,
        "only {} distinct schedules explored and DFS incomplete",
        report.distinct
    );
}
