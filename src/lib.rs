//! `drrs-repro` — umbrella crate for the DRRS reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests
//! can `use drrs_repro::...` a single coherent API:
//!
//! * [`engine`] — the `streamflow` stream-processing substrate,
//! * [`drrs`] — the paper's mechanism (Decoupling & Re-routing, Record
//!   Scheduling, Subscale Division),
//! * [`baselines`] — Megaphone, Meces, generalized OTFS, Unbound,
//!   Stop-Checkpoint-Restart,
//! * [`workloads`] — NEXMark Q7/Q8, the Twitch pipeline, and the custom
//!   3-operator sensitivity workload,
//! * [`sim`] — the deterministic simulation kernel.

pub use baselines;
pub use drrs_core as drrs;
pub use simcore as sim;
pub use streamflow as engine;
pub use workloads;
