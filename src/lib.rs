//! `drrs-repro` — umbrella crate for the DRRS reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests
//! can `use drrs_repro::...` a single coherent API:
//!
//! * [`engine`] — the `streamflow` stream-processing substrate,
//! * [`drrs`] — the paper's mechanism (Decoupling & Re-routing, Record
//!   Scheduling, Subscale Division),
//! * [`baselines`] — Megaphone, Meces, generalized OTFS, Unbound,
//!   Stop-Checkpoint-Restart,
//! * [`workloads`] — NEXMark Q7/Q8, the Twitch pipeline, and the custom
//!   3-operator sensitivity workload,
//! * [`sim`] — the deterministic simulation kernel,
//! * [`bench`] — the experiment harness: the scenario registry, runner and
//!   typed run reports (`bench::scenario`).
//!
//! For the common case, [`prelude`] pulls the whole working set into scope
//! with one `use`:
//!
//! ```no_run
//! use drrs_repro::prelude::*;
//! ```

pub use ::bench;
pub use baselines;
pub use drrs_core as drrs;
pub use simcore as sim;
pub use streamflow as engine;
pub use workloads;

/// The working set for building, scaling and measuring a job — one `use`
/// instead of five nested paths.
///
/// Covers: job construction (`JobBuilder`, `EdgeKind`, operators, sources),
/// engine configuration and driving (`EngineConfig`, `Sim`, `World`,
/// scheduler/dispatch knobs), the mechanisms (`FlexScaler`,
/// `MechanismConfig`, the baselines), the workloads, timing helpers, and
/// the experiment API (`ScenarioSpec`, `registry`, `Runner`, `RunReport`).
pub mod prelude {
    pub use baselines::{
        megaphone, otfs_all_at_once, otfs_fluid, MecesPlugin, StopRestartPlugin, UnboundPlugin,
    };
    pub use bench::scenario::{
        registry, EngineProfile, MechanismSpec, RunReport, Runner, ScaleSpec, ScenarioSpec, Shard,
        WorkloadSpec,
    };
    pub use drrs_core::{FlexScaler, MechanismConfig};
    pub use simcore::time::{as_ms, as_secs, ms, secs, SimTime};
    pub use simcore::{DetRng, SchedulerBackend, Zipf};
    pub use streamflow::graph::{EdgeKind, JobBuilder};
    pub use streamflow::instance::SourceGen;
    pub use streamflow::operator::{
        KeyedAgg, KeyedTouch, ReKeyByValue, Relay, WindowAgg, WindowJoin,
    };
    pub use streamflow::window::Agg;
    pub use streamflow::world::Sim;
    pub use streamflow::{DispatchMode, EngineConfig, NoScale, OpId, ScalePlugin, World};
    pub use workloads::custom::{cluster_engine_config, custom, CustomParams};
    pub use workloads::nexmark::{nexmark_engine_config, q7, q8, Q7Params, Q8Params};
    pub use workloads::twitch::{twitch, twitch_engine_config, TwitchParams};
}
